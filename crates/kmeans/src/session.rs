//! The estimator lifecycle root: a device profile, an optional executor
//! handle, and a lazily-built, cached kernel selector.
//!
//! The one-shot `KMeans::fit(&data)` API re-derived everything per call:
//! each fit re-validated the config, each process re-tuned the kernel
//! selector from scratch, and nothing owned the device-resident state
//! between calls. A [`Session`] amortizes all of that: build it once,
//! derive estimators from it ([`Session::kmeans`]), and every fit,
//! [`crate::KMeans::partial_fit`] batch and [`crate::FittedModel::predict`]
//! call shares the session's selector cache and executor scope.
//!
//! Selector persistence (the ROADMAP item) hangs off the session: point it
//! at a cache directory with [`Session::with_selector_cache`] or the
//! `FTK_SELECTOR_CACHE` environment variable and tuned selection tables
//! are written after the first build and reloaded by later sessions; a
//! corrupt or stale cache file falls back to re-tuning.

use crate::config::{KMeansConfig, Variant};
use crate::driver::KMeans;
use codegen::feasibility::stages_for;
use codegen::{plan_variant, KernelSelector, VariantChoice};
use gpu_sim::exec::{self, Executor};
use gpu_sim::timing::TileConfig;
use gpu_sim::{DeviceProfile, Precision};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Environment variable naming the selector cache directory used by
/// [`Session::new`] when no explicit [`Session::with_selector_cache`] is
/// given.
pub const SELECTOR_CACHE_ENV: &str = "FTK_SELECTOR_CACHE";

/// A long-lived estimator context: device profile + executor handle +
/// lazily-built, cached [`KernelSelector`].
///
/// Sessions are cheap to clone (clones share the selector cache) and are
/// the intended way to run many fits against one device:
///
/// ```
/// use gpu_sim::{DeviceProfile, Matrix};
/// use kmeans::{KMeansConfig, Session};
///
/// let session = Session::new(DeviceProfile::a100());
/// let km = session.kmeans(KMeansConfig::new(2).with_seed(1));
/// let data = Matrix::<f64>::from_fn(32, 2, |r, c| {
///     (r % 2) as f64 * 8.0 + r as f64 * 0.01 + c as f64 * 0.1
/// });
/// let model = km.fit_model(&data).unwrap();
/// assert_eq!(model.labels.len(), 32);
/// // the fitted model owns the uploaded centroids: prediction reuses them
/// let labels = model.predict(&data).unwrap();
/// assert_eq!(labels, model.labels);
/// ```
#[derive(Clone)]
pub struct Session {
    device: DeviceProfile,
    exec: Option<Arc<Executor>>,
    trace: Option<Arc<dyn trace::TraceSink>>,
    cache_dir: Option<PathBuf>,
    /// Lazily-built selectors, indexed `[fp32, fp64]`; shared across clones.
    selectors: Arc<Mutex<[Option<Arc<KernelSelector>>; 2]>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("device", &self.device)
            .field("exec", &self.exec)
            .field("trace", &self.trace.as_ref().map(|_| "TraceSink"))
            .field("cache_dir", &self.cache_dir)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Build a session for a device. The selector cache directory is taken
    /// from the `FTK_SELECTOR_CACHE` environment variable when set (and
    /// non-empty); [`Session::with_selector_cache`] overrides it.
    pub fn new(device: DeviceProfile) -> Self {
        let cache_dir = std::env::var(SELECTOR_CACHE_ENV)
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from);
        Session {
            device,
            exec: None,
            trace: None,
            cache_dir,
            selectors: Arc::new(Mutex::new([None, None])),
        }
    }

    /// Convenience: a session on the simulated A100.
    pub fn a100() -> Self {
        Session::new(DeviceProfile::a100())
    }

    /// Use `dir` as the selector cache directory: tuned selection tables
    /// are written there (one text file per device/precision, via
    /// [`KernelSelector::to_text`]) and reloaded by later sessions instead
    /// of re-tuning. Corrupt or stale files (wrong device, wrong precision,
    /// unparsable) are ignored and overwritten after re-tuning.
    pub fn with_selector_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Pin every fit/predict derived from this session to `exec` instead of
    /// the ambient executor (the global pool, or whatever an enclosing
    /// [`gpu_sim::exec::with_executor`] scope installed). Useful for
    /// deterministic A/B runs: `Session::with_executor(Executor::serial())`
    /// makes block order linear for everything the session runs.
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = Some(Arc::new(exec));
        self
    }

    /// Attach a trace sink: every fit, `partial_fit` batch and predict
    /// call derived from this session emits its spans (driver phases,
    /// labeled kernel launches, fault events) into `sink` via a
    /// [`trace::with_sink`] scope around the session's work. Without a
    /// sink (and without `FTK_TRACE`), instrumentation costs one flag
    /// check per emission site.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use gpu_sim::{DeviceProfile, Matrix};
    /// use kmeans::{KMeansConfig, Session};
    ///
    /// let sink = Arc::new(trace::RecordingSink::default());
    /// let session = Session::new(DeviceProfile::a100()).with_trace_sink(sink.clone());
    /// let km = session.kmeans(KMeansConfig::new(2).with_seed(7));
    /// let data = Matrix::<f32>::from_fn(64, 4, |r, c| (r % 2) as f32 * 6.0 + c as f32 * 0.1);
    /// km.fit_model(&data).unwrap();
    /// let profile = sink.phase_profile();
    /// assert!(profile.get(trace::phases::ASSIGNMENT).is_some());
    /// ```
    pub fn with_trace_sink(mut self, sink: Arc<dyn trace::TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// The device this session runs on.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The selector cache directory in effect, if any.
    pub fn selector_cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Run `f` under this session's executor and trace-sink scopes (a
    /// no-op wrapper when neither was attached).
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        let inner = || match &self.exec {
            Some(e) => exec::with_executor(e, f),
            None => f(),
        };
        match &self.trace {
            Some(sink) => trace::with_sink(Arc::clone(sink), inner),
            None => inner(),
        }
    }

    /// Derive an estimator bound to this session.
    pub fn kmeans(&self, config: KMeansConfig) -> KMeans {
        KMeans::with_session(self.clone(), config)
    }

    /// The kernel selector for `precision`, built on first use (tuning over
    /// the paper's 64-shape grid) and cached for the session's lifetime.
    /// With a cache directory configured, a valid cached table short-cuts
    /// the build, and a fresh build is persisted for the next process.
    pub fn selector(&self, precision: Precision) -> Arc<KernelSelector> {
        let idx = match precision {
            Precision::Fp32 => 0,
            Precision::Fp64 => 1,
        };
        let mut slots = self.selectors.lock();
        if let Some(s) = &slots[idx] {
            return Arc::clone(s);
        }
        let sel = match self.load_cached(precision) {
            Some(s) => s,
            None => {
                let s = KernelSelector::build(&self.device, precision);
                self.store_cached(precision, &s);
                s
            }
        };
        let sel = Arc::new(sel);
        slots[idx] = Some(Arc::clone(&sel));
        sel
    }

    /// The tuned tensor tile for a problem shape, from the cached selector.
    pub fn tuned_tile(&self, precision: Precision, clusters: usize, dim: usize) -> TileConfig {
        self.selector(precision)
            .select(clusters, dim)
            .tile_config(stages_for(&self.device))
    }

    /// The tuned assignment variant for a whole *fit*: the per-launch
    /// selector cannot see the iteration count, but the bound-pruned
    /// (Hamerly) kernel amortizes its warmup full scans across Lloyd
    /// iterations, so long fits switch families. Short fits get the tuned
    /// tensor tile for the shape; fits past the modeled crossover get
    /// [`Variant::Hamerly`].
    pub fn tuned_variant(
        &self,
        precision: Precision,
        m: usize,
        clusters: usize,
        dim: usize,
        max_iter: usize,
    ) -> Variant {
        let plan = plan_variant(&self.device, precision, m, clusters, dim, max_iter);
        match plan.choice {
            VariantChoice::BoundPruned => Variant::Hamerly,
            VariantChoice::Baseline => {
                Variant::Tensor(Some(self.tuned_tile(precision, clusters, dim)))
            }
        }
    }

    fn cache_path(&self, precision: Precision) -> Option<PathBuf> {
        let dir = self.cache_dir.as_ref()?;
        let slug: String = self
            .device
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        Some(dir.join(format!("ftk-selector-{slug}-{}.txt", precision.name())))
    }

    /// Parse a cached selection table; `None` (fall back to tuning) when the
    /// file is missing, unparsable, or tuned for a different device or
    /// precision.
    fn load_cached(&self, precision: Precision) -> Option<KernelSelector> {
        let path = self.cache_path(precision)?;
        let text = std::fs::read_to_string(path).ok()?;
        let sel = KernelSelector::from_text(&text).ok()?;
        let table = sel.table();
        (table.device == self.device.name && table.precision == precision).then_some(sel)
    }

    /// Best-effort persistence: cache writes never fail a fit.
    fn store_cached(&self, precision: Precision, sel: &KernelSelector) {
        let Some(path) = self.cache_path(precision) else {
            return;
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(path, sel.to_text());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_cache_dir(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ftk-session-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn selector_is_built_once_and_shared_across_clones() {
        let session = Session::a100();
        let a = session.selector(Precision::Fp32);
        let b = session.clone().selector(Precision::Fp32);
        assert!(Arc::ptr_eq(&a, &b), "clones share the cached selector");
        assert_eq!(a.table().precision, Precision::Fp32);
    }

    #[test]
    fn selector_cache_roundtrips_through_disk() {
        let dir = temp_cache_dir("roundtrip");
        let tuned = Session::a100()
            .with_selector_cache(&dir)
            .selector(Precision::Fp32);
        // a second session (fresh in-memory cache) must load the file
        let session2 = Session::a100().with_selector_cache(&dir);
        let path = session2.cache_path(Precision::Fp32).unwrap();
        assert!(path.exists(), "tuning must persist the table");
        let loaded = session2.selector(Precision::Fp32);
        assert_eq!(loaded.to_text(), tuned.to_text());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_falls_back_to_tuning_and_is_repaired() {
        let dir = temp_cache_dir("corrupt");
        let session = Session::a100().with_selector_cache(&dir);
        let path = session.cache_path(Precision::Fp64).unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, "not a selector table").unwrap();
        let sel = session.selector(Precision::Fp64);
        assert_eq!(sel.table().precision, Precision::Fp64);
        // the corrupt file was overwritten with the re-tuned table
        let repaired = std::fs::read_to_string(&path).unwrap();
        assert!(repaired.starts_with("ftk-selector v1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_cache_for_another_device_is_rejected() {
        let dir = temp_cache_dir("stale");
        // tune on the T4 and copy its table over the A100's cache slot
        let t4 = Session::new(DeviceProfile::t4()).with_selector_cache(&dir);
        let t4_sel = t4.selector(Precision::Fp32);
        let a100 = Session::a100().with_selector_cache(&dir);
        let a100_path = a100.cache_path(Precision::Fp32).unwrap();
        std::fs::write(&a100_path, t4_sel.to_text()).unwrap();
        let sel = a100.selector(Precision::Fp32);
        assert_eq!(
            sel.table().device,
            DeviceProfile::a100().name,
            "stale table (device mismatch) must be re-tuned, not adopted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tuned_tile_is_usable() {
        let tile = Session::a100().tuned_tile(Precision::Fp32, 16, 32);
        assert!(tile.tb_m > 0 && tile.tb_n > 0 && tile.tb_k > 0);
    }

    #[test]
    fn tuned_variant_switches_families_with_iteration_count() {
        let session = Session::a100();
        let short = session.tuned_variant(Precision::Fp32, 131_072, 16, 64, 3);
        assert!(
            matches!(short, Variant::Tensor(Some(_))),
            "short fit keeps the tuned tensor tile, got {short:?}"
        );
        let long = session.tuned_variant(Precision::Fp32, 131_072, 16, 64, 20);
        assert_eq!(long, Variant::Hamerly, "20-iteration fit bound-prunes");
    }

    #[test]
    fn session_executor_scopes_launches() {
        // A serial-pinned session must run launches under serial policy.
        let session = Session::a100().with_executor(Executor::serial());
        let policy = session.run(|| exec::with_current(|e| e.policy()));
        assert_eq!(policy, gpu_sim::exec::ExecPolicy::Serial);
    }
}
