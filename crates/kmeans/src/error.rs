//! Typed estimator errors.
//!
//! The estimator used to report every misuse through
//! [`SimError::InvalidConfig`] with a formatted string, which callers could
//! neither match on nor test precisely. [`KMeansError`] is the structured
//! replacement: configuration problems name the offending field, shape
//! problems carry both shapes, and genuine simulator failures pass through
//! unchanged.

use gpu_sim::SimError;
use std::fmt;

/// Errors surfaced by the estimator API ([`crate::Session`],
/// [`crate::KMeans`], [`crate::FittedModel`]).
///
/// ```
/// use kmeans::{KMeansConfig, KMeansError};
///
/// // k = 0 can never cluster anything; the error names the field.
/// let err = KMeansConfig::new(0).validate(10, 2).unwrap_err();
/// assert!(matches!(err, KMeansError::InvalidConfig { field: "k", .. }));
/// assert!(err.to_string().contains("k"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum KMeansError {
    /// A configuration field holds an unusable value for this problem.
    InvalidConfig {
        /// The [`crate::KMeansConfig`] field (or pseudo-field) at fault.
        field: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
    /// Two matrices that must agree in shape do not.
    ShapeMismatch {
        /// What was being shape-checked (e.g. "samples", "batch",
        /// "warm-start centroids").
        what: &'static str,
        /// The `(rows, cols)` the operation required.
        expected: (usize, usize),
        /// The `(rows, cols)` it received.
        got: (usize, usize),
    },
    /// The simulated device rejected a launch (resource overflow, kernel
    /// structure violation, ...).
    Sim(SimError),
}

impl fmt::Display for KMeansError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KMeansError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: {field}: {reason}")
            }
            KMeansError::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "shape mismatch: {what}: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            KMeansError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for KMeansError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KMeansError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for KMeansError {
    fn from(e: SimError) -> Self {
        KMeansError::Sim(e)
    }
}

/// Lossy conversion for the legacy [`crate::KMeans::fit`] compatibility
/// wrapper: structured variants collapse back into the stringly simulator
/// error they replaced.
impl From<KMeansError> for SimError {
    fn from(e: KMeansError) -> Self {
        match e {
            KMeansError::Sim(e) => e,
            KMeansError::InvalidConfig { field, reason } => {
                SimError::InvalidConfig(format!("{field}: {reason}"))
            }
            KMeansError::ShapeMismatch {
                what,
                expected,
                got,
            } => SimError::ShapeMismatch(format!(
                "{what}: expected {}x{}, got {}x{}",
                expected.0, expected.1, got.0, got.1
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field_and_shapes() {
        let e = KMeansError::InvalidConfig {
            field: "max_iter",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("max_iter"));
        let e = KMeansError::ShapeMismatch {
            what: "batch",
            expected: (4, 3),
            got: (4, 7),
        };
        let s = e.to_string();
        assert!(s.contains("batch") && s.contains("4x3") && s.contains("4x7"));
    }

    #[test]
    fn sim_errors_roundtrip_through_the_compat_conversion() {
        let sim = SimError::ShapeMismatch("inner".into());
        let km: KMeansError = sim.clone().into();
        assert_eq!(km, KMeansError::Sim(sim.clone()));
        let back: SimError = km.into();
        assert_eq!(back, sim);
    }

    #[test]
    fn structured_variants_collapse_to_stringly_sim_errors() {
        let km = KMeansError::InvalidConfig {
            field: "k",
            reason: "must be at least 1".into(),
        };
        match SimError::from(km) {
            SimError::InvalidConfig(msg) => assert!(msg.contains("k:")),
            other => panic!("wrong variant: {other:?}"),
        }
        let km = KMeansError::ShapeMismatch {
            what: "samples",
            expected: (1, 2),
            got: (3, 4),
        };
        assert!(matches!(SimError::from(km), SimError::ShapeMismatch(_)));
    }

    #[test]
    fn error_source_chains_to_sim() {
        use std::error::Error;
        let e = KMeansError::Sim(SimError::InvalidConfig("x".into()));
        assert!(e.source().is_some());
        let e = KMeansError::InvalidConfig {
            field: "k",
            reason: "r".into(),
        };
        assert!(e.source().is_none());
    }
}
