//! Centroid initialization and empty-cluster repair, shared by the
//! full-batch Lloyd driver and the streaming mini-batch driver.

use crate::config::InitMethod;
use gpu_sim::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Choose initial centroids from `samples` with the given strategy.
pub fn init_centroids<T: Scalar>(
    samples: &Matrix<T>,
    k: usize,
    seed: u64,
    method: InitMethod,
) -> Matrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = samples.rows();
    let dim = samples.cols();
    let mut out = Matrix::<T>::zeros(k, dim);
    match method {
        InitMethod::RandomSamples => {
            // k distinct indices via partial Fisher-Yates.
            let mut idx: Vec<usize> = (0..m).collect();
            for i in 0..k {
                let j = rng.random_range(i..m);
                idx.swap(i, j);
            }
            for (c, &i) in idx[..k].iter().enumerate() {
                for d in 0..dim {
                    out.set(c, d, samples.get(i, d));
                }
            }
        }
        InitMethod::KMeansPlusPlus => {
            let first = rng.random_range(0..m);
            for d in 0..dim {
                out.set(0, d, samples.get(first, d));
            }
            let mut d2 = vec![f64::INFINITY; m];
            for c in 1..k {
                // update D² against the newest centroid
                for (i, slot) in d2.iter_mut().enumerate() {
                    let mut dd = 0.0;
                    for d in 0..dim {
                        let diff = samples.get(i, d).to_f64() - out.get(c - 1, d).to_f64();
                        dd += diff * diff;
                    }
                    if dd < *slot {
                        *slot = dd;
                    }
                }
                let total: f64 = d2.iter().sum();
                let chosen = if total <= 0.0 {
                    rng.random_range(0..m)
                } else {
                    let mut target = rng.random::<f64>() * total;
                    let mut pick = m - 1;
                    for (i, &w) in d2.iter().enumerate() {
                        target -= w;
                        if target <= 0.0 {
                            pick = i;
                            break;
                        }
                    }
                    pick
                };
                for d in 0..dim {
                    out.set(c, d, samples.get(chosen, d));
                }
            }
        }
    }
    out
}

/// Move each empty cluster onto the sample farthest from its current
/// centroid (distinct samples per empty cluster).
pub fn reseed_empty_clusters<T: Scalar>(
    centroids: &mut Matrix<T>,
    counts: &[u32],
    samples: &Matrix<T>,
    distances: &[T],
) {
    let empties: Vec<usize> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c == 0)
        .map(|(i, _)| i)
        .collect();
    if empties.is_empty() {
        return;
    }
    // Rank samples by assignment distance, descending.
    let mut order: Vec<usize> = (0..distances.len()).collect();
    order.sort_by(|&a, &b| {
        distances[b]
            .partial_cmp(&distances[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (rank, cluster) in empties.into_iter().enumerate() {
        if rank >= order.len() {
            break;
        }
        let i = order[rank];
        for d in 0..samples.cols() {
            centroids.set(cluster, d, samples.get(i, d));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_init_picks_distinct_samples() {
        let samples = Matrix::<f64>::from_fn(20, 2, |r, c| (r * 10 + c) as f64);
        let init = init_centroids(&samples, 5, 3, InitMethod::RandomSamples);
        // every centroid is one of the samples, and no two coincide
        for c in 0..5 {
            let row0 = init.get(c, 0);
            assert_eq!(init.get(c, 1), row0 + 1.0, "centroid {c} is a sample");
            for other in 0..c {
                assert_ne!(init.get(other, 0), row0, "centroids {other}/{c} collide");
            }
        }
    }

    #[test]
    fn reseed_moves_empty_clusters_onto_far_samples() {
        let samples = Matrix::<f64>::from_fn(4, 1, |r, _| r as f64);
        let mut centroids = Matrix::<f64>::zeros(2, 1);
        let counts = vec![4, 0];
        let distances = vec![0.0, 1.0, 4.0, 9.0];
        reseed_empty_clusters(&mut centroids, &counts, &samples, &distances);
        // cluster 1 lands on sample 3, the farthest one
        assert_eq!(centroids.get(1, 0), 3.0);
        assert_eq!(centroids.get(0, 0), 0.0, "non-empty cluster untouched");
    }
}
