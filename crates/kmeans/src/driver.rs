//! The Lloyd-iteration driver: init → (assign → update)* → converge.
//!
//! [`KMeans`] is an estimator handle bound to a [`Session`]. The session
//! path ([`KMeans::fit_model`], [`KMeans::partial_fit`],
//! [`KMeans::fit_from`]) returns a [`crate::FittedModel`] that owns the
//! device-resident state; [`KMeans::fit`] remains as a thin compatibility
//! wrapper returning the bare [`FitResult`] with the legacy
//! [`SimError`]-typed failure channel.

use crate::assign::{default_tile, run_assignment, AssignmentResult};
use crate::config::{KMeansConfig, Variant};
use crate::device_data::DeviceData;
use crate::error::KMeansError;
use crate::init::{init_centroids, reseed_empty_clusters};
use crate::minibatch;
use crate::model::FittedModel;
use crate::phase;
use crate::session::Session;
use crate::update::{centroid_drift, update_centroids};
use crate::variants::hamerly;
use abft::dmr::DmrStats;
use fault::{CampaignStats, InjectionRecord, Injector, InjectorConfig, RateRealization};
use gpu_sim::counters::CounterSnapshot;
use gpu_sim::mma::{FaultHook, NoFault};
use gpu_sim::timing::{estimate, GemmShape, KernelClass, TimingInput};
use gpu_sim::{Counters, DeviceProfile, Matrix, Precision, Scalar, SimError};
use parking_lot::Mutex;

/// Per-iteration progress record (populated when history tracking is on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// Lloyd iteration index (0-based). For a streaming fit, the batch
    /// index.
    pub iteration: usize,
    /// Inertia after the assignment step.
    pub inertia: f64,
    /// Samples whose assignment changed relative to the previous iteration.
    pub reassigned: usize,
    /// Clusters that ended the iteration empty (before reseeding).
    pub empty_clusters: usize,
}

/// Outcome of a `fit`.
#[derive(Debug, Clone)]
pub struct FitResult<T> {
    /// Final centroids, `k x dim`.
    pub centroids: Matrix<T>,
    /// Final assignment per sample (for a streaming fit: the most recent
    /// batch).
    pub labels: Vec<u32>,
    /// Final within-cluster sum of squares (for a streaming fit: of the
    /// most recent batch under the post-update centroids).
    pub inertia: f64,
    /// Lloyd iterations executed. Streaming fits count one per batch, and
    /// a full fit continued via `partial_fit` keeps counting forward
    /// (Lloyd iterations + batches).
    pub iterations: usize,
    /// Whether the tolerance criterion fired before `max_iter`. Always
    /// `false` after a `partial_fit` step: a stream has no convergence
    /// criterion (every batch moves the centroids).
    pub converged: bool,
    /// Fault-tolerance campaign statistics (accumulated across batches for
    /// a streaming fit).
    pub ft_stats: CampaignStats,
    /// DMR statistics from the update phase.
    pub dmr: DmrStats,
    /// Hardware-event counters accumulated over the whole fit.
    pub counters: CounterSnapshot,
    /// Faults injected during the fit (0 without an injection campaign).
    pub injected: u64,
    /// Every fault injected during the fit, in injection order (empty
    /// without an injection campaign). Campaign harnesses log these as
    /// per-injection JSONL records.
    pub injection_records: Vec<InjectionRecord>,
    /// Requested vs. achievable injection rate of the campaign schedule
    /// (`None` without an injection campaign). When the requested rate
    /// saturates the per-block probability clamp the achieved rate falls
    /// short — see [`fault::RateRealization`]. For a streaming fit this is
    /// the *worst* (lowest achieved/requested) realization over all
    /// batches, so saturation anywhere in the stream stays visible.
    pub injection_realization: Option<RateRealization>,
    /// Per-iteration trace (inertia, reassignments, empty clusters).
    pub history: Vec<IterationEvent>,
}

/// An injected fit paired with its fault-free twin (identical data, seed,
/// scheme and numerics — only the fault stream differs), as produced by
/// [`KMeans::fit_with_twin`]. Comparing the two is how campaigns classify
/// unhandled faults into benign vs. silent data corruption.
#[derive(Debug, Clone)]
pub struct TwinFit<T> {
    /// The fit run under the configured injection schedule.
    pub injected: FitResult<T>,
    /// The fault-free twin: same configuration with injection off.
    pub clean: FitResult<T>,
}

/// The FT K-means estimator, bound to a [`Session`].
#[derive(Debug, Clone)]
pub struct KMeans {
    session: Session,
    config: KMeansConfig,
}

impl KMeans {
    /// Build an estimator for a device (a fresh single-use [`Session`] is
    /// created under the hood; to amortize session state across estimators
    /// use [`Session::kmeans`] / [`KMeans::with_session`]).
    pub fn new(device: DeviceProfile, config: KMeansConfig) -> Self {
        KMeans::with_session(Session::new(device), config)
    }

    /// Build an estimator sharing an existing session.
    pub fn with_session(session: Session, config: KMeansConfig) -> Self {
        KMeans { session, config }
    }

    /// Convenience: A100 with the given cluster count, everything default.
    pub fn with_k(k: usize) -> Self {
        KMeans::new(DeviceProfile::a100(), KMeansConfig::new(k))
    }

    /// The configuration in use.
    pub fn config(&self) -> &KMeansConfig {
        &self.config
    }

    /// The session this estimator runs in.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Fit the estimator on `samples` (row-major `m x dim`).
    ///
    /// Compatibility wrapper over [`KMeans::fit_model`]: returns the bare
    /// [`FitResult`] (dropping the device-resident model state) and
    /// collapses [`KMeansError`] back into the legacy [`SimError`] channel.
    pub fn fit<T: Scalar>(&self, samples: &Matrix<T>) -> Result<FitResult<T>, SimError> {
        self.fit_model(samples)
            .map(FittedModel::into_result)
            .map_err(SimError::from)
    }

    /// Fit the estimator on `samples`, returning a [`FittedModel`] that
    /// owns the device-resident final centroids — the session-path API
    /// enabling re-upload-free [`FittedModel::predict`] /
    /// [`FittedModel::score`] and [`KMeans::fit_from`] warm starts.
    pub fn fit_model<T: Scalar>(&self, samples: &Matrix<T>) -> Result<FittedModel<T>, KMeansError> {
        let (result, data) = self
            .session
            .run(|| lloyd_core(&self.session, &self.config, samples, None))?;
        Ok(finish_model(
            self.session.clone(),
            self.config.clone(),
            result,
            data,
        ))
    }

    /// Fit on `samples` starting from `warm`'s centroids instead of a fresh
    /// initialization — the warm-start path for refitting on grown or
    /// drifted data. The estimator's `k` must match the warm model's.
    pub fn fit_from<T: Scalar>(
        &self,
        warm: &FittedModel<T>,
        samples: &Matrix<T>,
    ) -> Result<FittedModel<T>, KMeansError> {
        let init = &warm.result.centroids;
        if init.rows() != self.config.k || init.cols() != samples.cols() {
            return Err(KMeansError::ShapeMismatch {
                what: "warm-start centroids",
                expected: (self.config.k, samples.cols()),
                got: (init.rows(), init.cols()),
            });
        }
        let (result, data) = self
            .session
            .run(|| lloyd_core(&self.session, &self.config, samples, Some(init)))?;
        Ok(finish_model(
            self.session.clone(),
            self.config.clone(),
            result,
            data,
        ))
    }

    /// Streaming mini-batch K-means: consume one batch and return the
    /// updated model.
    ///
    /// Pass `None` for the first batch (centroids are initialized from it;
    /// the batch must therefore hold at least `k` samples) and the previous
    /// return value afterwards. A model produced by [`KMeans::fit_model`]
    /// can also be continued this way — its final cluster sizes seed the
    /// learning-rate denominators. Per-batch assignment runs the configured
    /// kernel variant (with ABFT and fault injection, when enabled);
    /// centroid updates apply the aggregated mini-batch learning-rate rule.
    /// `ft_stats`, DMR and hardware counters accumulate across batches, and
    /// the produced centroids are byte-identical under `FTK_EXEC=serial`
    /// and the parallel pool.
    pub fn partial_fit<T: Scalar>(
        &self,
        model: Option<FittedModel<T>>,
        batch: &Matrix<T>,
    ) -> Result<FittedModel<T>, KMeansError> {
        minibatch::partial_fit_step(&self.session, &self.config, model, batch)
    }

    /// Fit under the configured injection schedule AND once more with
    /// injection disabled — the fault-free twin. Both runs share data,
    /// seeding, scheme and numerics, so any divergence between them is
    /// attributable to unhandled faults; campaign classification compares
    /// the pair to split [`CampaignStats::unhandled`] into benign flips
    /// vs. silent data corruption.
    ///
    /// The twin's result is independent of the execution policy; the
    /// injected fit's fault *sites* are not (parallel block order
    /// interleaves the RNG stream), so deterministic campaigns run this
    /// under a serial executor scope ([`gpu_sim::exec::with_executor`]).
    pub fn fit_with_twin<T: Scalar>(&self, samples: &Matrix<T>) -> Result<TwinFit<T>, SimError> {
        let injected = self.fit(samples)?;
        let mut clean_est = self.clone();
        clean_est.config.ft = clean_est.config.ft.without_injection();
        let clean = clean_est.fit(samples)?;
        Ok(TwinFit { injected, clean })
    }
}

/// Wrap a finished Lloyd fit into a model: the learning-rate weights of a
/// full-batch fit are its final cluster sizes, so a stream can continue
/// from it seamlessly.
fn finish_model<T: Scalar>(
    session: Session,
    config: KMeansConfig,
    result: FitResult<T>,
    data: DeviceData<T>,
) -> FittedModel<T> {
    let mut weights = vec![0u64; config.k];
    for &l in &result.labels {
        if let Some(w) = weights.get_mut(l as usize) {
            *w += 1;
        }
    }
    FittedModel::from_parts(session, config, &data, result, weights, 0)
}

/// Build the fault injector for a problem shape, spreading a rate schedule
/// over `launches` assignment launches (the fit's `max_iter`, or 1 for a
/// single mini-batch step).
pub(crate) fn build_injector<T: Scalar>(
    device: &DeviceProfile,
    cfg: &KMeansConfig,
    m: usize,
    dim: usize,
    launches: usize,
) -> Option<Injector> {
    if !cfg.ft.injection.is_active() {
        return None;
    }
    let tile = match cfg.variant {
        Variant::Tensor(Some(t)) => t,
        _ => default_tile(T::PRECISION),
    };
    let shape = GemmShape::new(m, cfg.k, dim);
    let blocks = m.div_ceil(tile.tb_m) * cfg.k.div_ceil(tile.tb_n);
    // Per-launch kernel time converting a rate schedule into per-block
    // probability: either the calibrated timing model's estimate for
    // this shape (physical, default), or the configured distance-kernel
    // residency budget spread uniformly over the fit's assignment
    // launches (campaign mode — see `FtConfig::modeled_residency_s`).
    let kernel_s = if cfg.ft.modeled_residency_s > 0.0 {
        cfg.ft.modeled_residency_s / launches.max(1) as f64
    } else {
        let t = estimate(&TimingInput {
            ft: cfg.ft.scheme.ft_mode(),
            ..TimingInput::plain(device, T::PRECISION, KernelClass::Tensor(tile), shape)
        });
        t.time_s.max(1e-9)
    };
    let mma_k = match T::PRECISION {
        Precision::Fp32 => 8,
        Precision::Fp64 => 4,
    };
    let events = (tile.warps() * dim.div_ceil(tile.tb_k).max(1) * (tile.tb_k / mma_k)) as u64;
    Some(Injector::new(InjectorConfig {
        schedule: cfg.ft.injection,
        model: fault::SeuModel {
            target: cfg.ft.fault_target,
            ..fault::SeuModel::default()
        },
        seed: cfg.ft.injection_seed,
        kernel_time_hint_s: kernel_s,
        blocks_hint: blocks,
        events_per_block_hint: events.max(1),
    }))
}

/// The full-batch Lloyd loop. Returns the fit outcome together with the
/// device-resident data (whose centroids are the final ones); a
/// [`FittedModel`] keeps the centroid buffers of that data resident.
fn lloyd_core<T: Scalar>(
    session: &Session,
    cfg: &KMeansConfig,
    samples: &Matrix<T>,
    warm_start: Option<&Matrix<T>>,
) -> Result<(FitResult<T>, DeviceData<T>), KMeansError> {
    let device = session.device();
    let (m, dim) = (samples.rows(), samples.cols());
    cfg.validate(m, dim)?;

    let counters = Counters::new();
    let stats = Mutex::new(CampaignStats::default());
    let mut dmr_total = DmrStats::default();

    let (mut centroids, mut data) = phase::traced(trace::phases::INIT, 0, &counters, || {
        let centroids = match warm_start {
            Some(init) => init.clone(),
            None => init_centroids(samples, cfg.k, cfg.seed, cfg.init),
        };
        let mut data = DeviceData::upload(device, samples, &centroids, &counters)?;
        if cfg.variant == Variant::Hamerly {
            // Vacuous bounds (u = +∞) make the first pruned pass a full
            // scan; the half-separations must exist before any assignment
            // runs.
            data.ensure_bounds();
            hamerly::compute_s_half(device, &data, &counters)?;
        }
        Ok::<_, KMeansError>((centroids, data))
    })?;

    let injector = build_injector::<T>(device, cfg, m, dim, cfg.max_iter);
    let hook: &dyn FaultHook<T> = match injector.as_ref() {
        Some(i) => i,
        None => &NoFault,
    };
    let realization = injector.as_ref().map(|i| i.realization());
    let rate_saturated = realization.is_some_and(|r| r.saturated());

    let mut prev_inertia = f64::INFINITY;
    let mut labels = vec![0u32; m];
    let mut inertia;
    let mut converged = false;
    let mut iterations = 0;
    let mut history = Vec::with_capacity(cfg.max_iter);
    // Baseline for per-iteration fault-event deltas: the campaign ledger
    // plus the authoritative injector and DMR counts folded in, so trace
    // streams see every handling-path movement exactly once per iteration
    // (host-side emission keeps pool runs count-identical to serial).
    let mut fault_base = CampaignStats::default();

    for it in 0..cfg.max_iter {
        iterations = it + 1;
        if let Some(i) = injector.as_ref() {
            i.begin_launch();
            stats.lock().note_injection_launch(rate_saturated);
        }
        let assignment: AssignmentResult<T> =
            phase::traced(trace::phases::ASSIGNMENT, it as u64, &counters, || {
                run_assignment(
                    device,
                    &data,
                    cfg.variant,
                    cfg.ft.scheme,
                    hook,
                    &counters,
                    &stats,
                )
            })?;
        // Hamerly protection: periodic exact revalidation of the resident
        // bound state, widened to the whole population on the final
        // iteration so no corrupted bound survives the fit. Under a
        // protective scheme every due sweep is full-width and doubles as a
        // verify-and-repair pass (the sweep *is* this variant's ABFT — a
        // partial stratum would let a struck assignment poison the update
        // it feeds); unprotected fits keep the cheap rotating stratum,
        // where violations are booked as detected and repaired by a
        // verified (hook-free) un-pruned re-assignment that rebuilds both
        // labels and bounds.
        let assignment = if cfg.variant == Variant::Hamerly {
            let last = it + 1 == cfg.max_iter;
            let periodic = cfg.ft.revalidate_every > 0 && (it + 1) % cfg.ft.revalidate_every == 0;
            if last || periodic {
                phase::traced(trace::phases::REVALIDATION, it as u64, &counters, || {
                    if last || cfg.ft.scheme != abft::SchemeKind::None {
                        let (violations, exact) =
                            hamerly::revalidate_and_repair(device, &data, &counters)?;
                        stats.lock().note_revalidation(violations);
                        if violations > 0 {
                            stats.lock().recomputed += violations;
                            trace::fault(trace::faults::REVAL_REPAIR, violations);
                        }
                        Ok::<_, KMeansError>(exact)
                    } else {
                        let r = hamerly::REVALIDATE_STRIDE;
                        let stratum = (it + 1) / cfg.ft.revalidate_every % r;
                        let violations = hamerly::revalidate(device, &data, r, stratum, &counters)?;
                        stats.lock().note_revalidation(violations);
                        if violations > 0 {
                            let repaired =
                                hamerly::hamerly_assign(device, &data, true, &NoFault, &counters)?;
                            stats.lock().recomputed += violations;
                            trace::fault(trace::faults::REVAL_REPAIR, violations);
                            Ok(repaired)
                        } else {
                            Ok(assignment)
                        }
                    }
                })?
            } else {
                assignment
            }
        } else {
            assignment
        };
        let reassigned = if it == 0 {
            m
        } else {
            labels
                .iter()
                .zip(&assignment.labels)
                .filter(|(a, b)| a != b)
                .count()
        };
        labels = assignment.labels;
        inertia = assignment
            .distances
            .iter()
            .map(|d| d.to_f64().max(0.0)) // FP cancellation may yield -0 epsilon
            .sum();

        if let Some(i) = injector.as_ref() {
            i.begin_launch();
            stats.lock().note_injection_launch(rate_saturated);
        }
        let update = phase::traced(trace::phases::UPDATE, it as u64, &counters, || {
            update_centroids(
                device,
                &data.samples,
                m,
                dim,
                &labels,
                &centroids,
                cfg.ft.dmr_update,
                hook,
                &counters,
            )
        })?;
        dmr_total.merge(&update.dmr);
        if update.oob_labels > 0 {
            // Corrupted (out-of-range) labels caught by the update
            // phase count as detected faults in the campaign ledger.
            stats.lock().detected += update.oob_labels;
        }
        centroids = update.centroids;

        let empty_clusters = update.counts.iter().filter(|&&c| c == 0).count();
        history.push(IterationEvent {
            iteration: it,
            inertia,
            reassigned,
            empty_clusters,
        });

        // Empty-cluster repair: reseed each empty cluster at the sample
        // currently farthest from its centroid.
        reseed_empty_clusters(
            &mut centroids,
            &update.counts,
            samples,
            &assignment.distances,
        );

        phase::traced(trace::phases::DRIFT, it as u64, &counters, || {
            let old_centroids = data.bounds.is_some().then(|| data.centroids.clone());
            data.refresh_centroids(device, &centroids, &counters)?;
            if let (Some(old), Some(bounds)) = (old_centroids, data.bounds.as_ref()) {
                // The update-phase fold-in of the Hamerly variant: measure
                // how far each centroid moved (including reseeds), refresh
                // the half-separations, and loosen the bounds eagerly so
                // they stay current against the refreshed centroids.
                let max_drift = centroid_drift(
                    device,
                    &old,
                    &data.centroids,
                    cfg.k,
                    dim,
                    &bounds.drift,
                    &counters,
                )?;
                hamerly::compute_s_half(device, &data, &counters)?;
                hamerly::apply_drift(device, &data, max_drift, &counters)?;
            }
            Ok::<_, KMeansError>(())
        })?;

        if trace::active() {
            // Fold the authoritative injector and DMR counts into a copy of
            // the campaign ledger, then emit only the movement since the
            // previous iteration as fault events.
            let mut cur = *stats.lock();
            cur.injected = injector.as_ref().map_or(0, |i| i.injected_count());
            cur.dmr_mismatches = dmr_total.mismatches;
            cur.emit_trace_delta(&fault_base);
            fault_base = cur;
        }

        let rel = if prev_inertia.is_finite() && prev_inertia > 0.0 {
            (prev_inertia - inertia).abs() / prev_inertia
        } else {
            f64::INFINITY
        };
        if rel < cfg.tol {
            converged = true;
            break;
        }
        prev_inertia = inertia;
    }

    // The loop's `inertia` was measured against the centroids the last
    // assignment ran with, but `centroids` has since been updated (and
    // possibly reseeded). Re-measure so the returned inertia is the cost
    // of the returned labels under the returned centroids. (On a
    // max_iter-bounded fit the labels themselves may still predate the
    // final update — no extra assignment pass is run, matching
    // `lloyd_reference`.)
    let inertia = crate::metrics::inertia(samples, &centroids, &labels);

    let mut ft_stats = *stats.lock();
    // The injector owns the authoritative injection count; fold it into
    // the campaign ledger so `unhandled()` is meaningful directly off a
    // FitResult.
    ft_stats.injected = injector.as_ref().map_or(0, |i| i.injected_count());
    let result = FitResult {
        centroids,
        labels,
        inertia,
        iterations,
        converged,
        ft_stats,
        dmr: dmr_total,
        counters: counters.snapshot(),
        injected: ft_stats.injected,
        injection_records: injector.as_ref().map_or_else(Vec::new, |i| i.records()),
        injection_realization: realization,
        history,
    };
    Ok((result, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FtConfig, InitMethod};
    use crate::metrics::inertia as inertia_of;
    use crate::reference::lloyd_reference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(m: usize, dim: usize, k: usize, seed: u64) -> Matrix<f64> {
        // lightweight local blob generator to avoid a dev-dependency cycle
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(m, dim, |r, c| {
            let center = ((r % k) * 10) as f64;
            center + ((rng.random::<f64>() - 0.5) * 0.5) + c as f64 * 0.01
        })
    }

    #[test]
    fn fit_recovers_separated_clusters() {
        let data = blobs(120, 3, 3, 1);
        let km = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig::new(3)
                .with_variant(Variant::Tensor(None))
                .with_seed(5),
        );
        let r = km.fit(&data).unwrap();
        assert!(r.converged, "should converge on separable data");
        assert!(r.iterations <= 50);
        // every cluster used
        let mut seen = [false; 3];
        for &l in &r.labels {
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // inertia consistent with returned centroids/labels
        let check = inertia_of(&data, &r.centroids, &r.labels);
        assert!((check - r.inertia).abs() / check.max(1.0) < 1e-6);
    }

    #[test]
    fn matches_cpu_reference_per_iteration() {
        let data = blobs(90, 4, 3, 2);
        let km = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig {
                k: 3,
                max_iter: 8,
                tol: 0.0, // run all iterations
                seed: 11,
                ..Default::default()
            },
        );
        let r = km.fit(&data).unwrap();
        let init = init_centroids(&data, 3, 11, InitMethod::RandomSamples);
        let (_, ref_labels, _) = lloyd_reference(&data, &init, 8);
        assert_eq!(r.labels, ref_labels);
    }

    #[test]
    fn all_variants_agree_on_final_labels() {
        let data = blobs(100, 5, 4, 3);
        let variants = [
            Variant::Naive,
            Variant::GemmV1,
            Variant::FusedV2,
            Variant::BroadcastV3,
            Variant::Tensor(None),
            Variant::Hamerly,
        ];
        let session = Session::a100();
        let mut results = Vec::new();
        for v in variants {
            let km = session.kmeans(KMeansConfig::new(4).with_variant(v).with_seed(9));
            results.push(km.fit(&data).unwrap().labels);
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn history_tracks_monotone_convergence() {
        let data = blobs(150, 3, 3, 17);
        let km = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig {
                k: 3,
                max_iter: 15,
                tol: 0.0,
                seed: 2,
                ..Default::default()
            },
        );
        let r = km.fit(&data).unwrap();
        assert_eq!(r.history.len(), r.iterations);
        assert_eq!(
            r.history[0].reassigned, 150,
            "first iteration assigns everything"
        );
        // Lloyd monotonicity: inertia never increases along the trace.
        for w in r.history.windows(2) {
            assert!(
                w[1].inertia <= w[0].inertia * (1.0 + 1e-12),
                "inertia rose: {} -> {}",
                w[0].inertia,
                w[1].inertia
            );
        }
        // Once the assignment stabilizes, reassignment counts hit zero.
        assert_eq!(r.history.last().unwrap().reassigned, 0);
    }

    #[test]
    fn kmeans_plus_plus_initializes_distinctly() {
        let data = blobs(60, 2, 4, 4);
        let km = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig::new(4)
                .with_init(InitMethod::KMeansPlusPlus)
                .with_seed(21),
        );
        let r = km.fit(&data).unwrap();
        assert!(r.converged);
        let mut seen = [false; 4];
        for &l in &r.labels {
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rejects_degenerate_configs_with_typed_errors() {
        let data = Matrix::<f32>::zeros(5, 2);
        let session = Session::a100();
        match session.kmeans(KMeansConfig::new(0)).fit_model(&data) {
            Err(KMeansError::InvalidConfig { field: "k", .. }) => {}
            other => panic!("k = 0 must be InvalidConfig(k): {other:?}"),
        }
        match session.kmeans(KMeansConfig::new(6)).fit_model(&data) {
            Err(KMeansError::InvalidConfig { field: "k", .. }) => {}
            other => panic!("k > m must be InvalidConfig(k): {other:?}"),
        }
        // the compatibility wrapper still reports through SimError
        assert!(matches!(
            KMeans::new(DeviceProfile::a100(), KMeansConfig::new(0)).fit(&data),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn predict_assigns_new_samples() {
        let data = blobs(80, 3, 2, 7);
        let km = Session::a100().kmeans(KMeansConfig::new(2).with_seed(1));
        let fitted = km.fit_model(&data).unwrap();
        let labels = fitted.predict(&data).unwrap();
        assert_eq!(labels, fitted.labels);
    }

    #[test]
    fn fit_from_warm_start_reaches_the_same_fixed_point_faster() {
        let data = blobs(200, 4, 3, 19);
        let km = Session::a100().kmeans(KMeansConfig::new(3).with_seed(6));
        let cold = km.fit_model(&data).unwrap();
        let warm = km.fit_from(&cold, &data).unwrap();
        assert_eq!(warm.labels, cold.labels, "fixed point is stable");
        assert!(
            warm.iterations <= cold.iterations,
            "warm start must not be slower: {} vs {}",
            warm.iterations,
            cold.iterations
        );
        // shape-checked warm starts
        let km2 = Session::a100().kmeans(KMeansConfig::new(4).with_seed(6));
        assert!(matches!(
            km2.fit_from(&cold, &data),
            Err(KMeansError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn protected_fit_under_injection_matches_clean_fit() {
        let data = blobs(128, 4, 4, 8);
        let clean = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig::new(4).with_seed(2).with_ft(FtConfig {
                scheme: abft::SchemeKind::FtKMeans,
                dmr_update: true,
                injection: fault::InjectionSchedule::Off,
                injection_seed: 0,
                ..Default::default()
            }),
        )
        .fit(&data)
        .unwrap();
        let injected = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig::new(4).with_seed(2).with_ft(FtConfig {
                scheme: abft::SchemeKind::FtKMeans,
                dmr_update: true,
                injection: fault::InjectionSchedule::PerBlock { probability: 0.8 },
                injection_seed: 99,
                ..Default::default()
            }),
        )
        .fit(&data)
        .unwrap();
        assert!(injected.injected > 0, "campaign must actually inject");
        assert_eq!(injected.labels, clean.labels, "FT must absorb every fault");
        assert!(injected.ft_stats.handled() + injected.dmr.mismatches > 0);
    }

    #[test]
    fn twin_fit_pairs_injected_with_fault_free() {
        let data = blobs(256, 4, 4, 12);
        let km = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig::new(4).with_seed(3).with_ft(FtConfig {
                scheme: abft::SchemeKind::FtKMeans,
                dmr_update: true,
                injection: fault::InjectionSchedule::PerBlock { probability: 0.9 },
                injection_seed: 5,
                ..Default::default()
            }),
        );
        let twin = km.fit_with_twin(&data).unwrap();
        assert!(twin.injected.injected > 0, "injected leg must inject");
        assert_eq!(twin.clean.injected, 0, "twin must be fault-free");
        assert_eq!(
            twin.injected.injection_records.len() as u64,
            twin.injected.injected,
            "records mirror the count"
        );
        assert!(twin.clean.injection_records.is_empty());
        assert!(twin.clean.injection_realization.is_none());
        // FP64 + FtKMeans absorbs the barrage, so the pair agrees.
        assert_eq!(twin.injected.labels, twin.clean.labels);
    }

    #[test]
    fn residency_rate_schedule_injects_and_reports_realization() {
        let data = blobs(512, 8, 4, 14);
        let fit = |rate: f64| {
            KMeans::new(
                DeviceProfile::a100(),
                KMeansConfig {
                    k: 4,
                    max_iter: 6,
                    tol: 0.0,
                    seed: 4,
                    ft: FtConfig {
                        scheme: abft::SchemeKind::FtKMeans,
                        dmr_update: true,
                        injection: fault::InjectionSchedule::Rate {
                            errors_per_second: rate,
                        },
                        injection_seed: 9,
                        modeled_residency_s: 1.0,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .fit(&data)
            .unwrap()
        };
        // 50 err/s over one modeled second ≈ 50 expected injections; demand
        // at least a loose statistical floor.
        let r = fit(50.0);
        assert!(
            r.injected >= 20,
            "expected tens of injections, got {}",
            r.injected
        );
        let real = r.injection_realization.expect("campaign must report");
        assert!((real.requested_hz - 50.0).abs() < 1e-6);
        assert_eq!(r.ft_stats.injection_launches, 2 * r.iterations as u64);
        if !real.saturated() {
            assert_eq!(r.ft_stats.saturated_launches, 0);
        }
        // An absurd rate must saturate the per-block clamp and say so.
        let r = fit(1e7);
        let real = r.injection_realization.unwrap();
        assert!(real.saturated(), "1e7 err/s must saturate: {real:?}");
        assert!(real.achieved_hz < real.requested_hz);
        assert_eq!(r.ft_stats.saturated_launches, r.ft_stats.injection_launches);
    }

    #[test]
    fn empty_cluster_reseeding_keeps_k_clusters() {
        // Pathological init: k=4 on data with 2 real blobs.
        let data = blobs(40, 2, 2, 10);
        let km = KMeans::new(
            DeviceProfile::a100(),
            KMeansConfig {
                k: 4,
                max_iter: 30,
                seed: 13,
                ..Default::default()
            },
        );
        let r = km.fit(&data).unwrap();
        let mut counts = [0usize; 4];
        for &l in &r.labels {
            counts[l as usize] += 1;
        }
        // after reseeding, no cluster should be persistently empty
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 2);
    }
}
