//! Phase-span helper: wraps a driver phase in a `trace` begin/end pair
//! carrying the counter delta the phase produced.
//!
//! The helper snapshots the launch [`Counters`] before running the phase
//! body and attaches `delta.nonzero_fields()` to the closing event, so a
//! [`trace::PhaseProfile`](trace::profile::PhaseProfile) can attribute
//! bytes/ops per phase without the driver threading snapshots around by
//! hand. When no sink is active the body runs directly — no snapshot, no
//! allocation.

use gpu_sim::Counters;

/// Run `f` inside a `phase` span (when tracing is active), attaching the
/// counter delta accumulated by the body to the `PhaseEnd` event.
pub(crate) fn traced<R>(
    phase: &'static str,
    index: u64,
    counters: &Counters,
    f: impl FnOnce() -> R,
) -> R {
    if !trace::active() {
        return f();
    }
    let before = counters.snapshot();
    trace::phase_begin(phase, index);
    let out = f();
    trace::phase_end(phase, index, || {
        counters.snapshot().since(&before).nonzero_fields()
    });
    out
}
