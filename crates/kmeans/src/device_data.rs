//! Device-resident problem state shared by all kernel variants.

use crate::norms::row_sq_norms_kernel;
use gpu_sim::{Counters, DeviceProfile, GlobalBuffer, Matrix, Scalar, SimError};

/// Samples, centroids and their squared norms, uploaded to simulated global
/// memory (Fig. 2 step 1: the `Samples²` / `Centroids²` terms are computed
/// once per iteration by dedicated kernels).
pub struct DeviceData<T: Scalar> {
    /// Samples, row-major `m x dim`.
    pub samples: GlobalBuffer<T>,
    /// Centroids, row-major `k x dim`.
    pub centroids: GlobalBuffer<T>,
    /// `‖x_i‖²` per sample.
    pub sample_norms: GlobalBuffer<T>,
    /// `‖y_j‖²` per centroid.
    pub centroid_norms: GlobalBuffer<T>,
    /// Number of samples (GEMM M).
    pub m: usize,
    /// Number of centroids (GEMM N).
    pub k: usize,
    /// Feature dimension (GEMM K).
    pub dim: usize,
}

impl<T: Scalar> DeviceData<T> {
    /// Upload samples and centroids and compute both norm vectors with the
    /// squared-norm kernel.
    pub fn upload(
        device: &DeviceProfile,
        samples: &Matrix<T>,
        centroids: &Matrix<T>,
        counters: &Counters,
    ) -> Result<Self, SimError> {
        if samples.cols() != centroids.cols() {
            return Err(SimError::ShapeMismatch(format!(
                "samples dim {} != centroids dim {}",
                samples.cols(),
                centroids.cols()
            )));
        }
        let s = GlobalBuffer::from_matrix(samples);
        let c = GlobalBuffer::from_matrix(centroids);
        let sn = row_sq_norms_kernel(device, &s, samples.rows(), samples.cols(), counters)?;
        let cn = row_sq_norms_kernel(device, &c, centroids.rows(), centroids.cols(), counters)?;
        Ok(DeviceData {
            samples: s,
            centroids: c,
            sample_norms: sn,
            centroid_norms: cn,
            m: samples.rows(),
            k: centroids.rows(),
            dim: samples.cols(),
        })
    }

    /// Replace the centroids (between Lloyd iterations) and refresh their
    /// norms.
    pub fn refresh_centroids(
        &mut self,
        device: &DeviceProfile,
        centroids: &Matrix<T>,
        counters: &Counters,
    ) -> Result<(), SimError> {
        if centroids.cols() != self.dim || centroids.rows() != self.k {
            return Err(SimError::ShapeMismatch(format!(
                "expected {}x{} centroids, got {}x{}",
                self.k,
                self.dim,
                centroids.rows(),
                centroids.cols()
            )));
        }
        self.centroids = GlobalBuffer::from_matrix(centroids);
        self.centroid_norms =
            row_sq_norms_kernel(device, &self.centroids, self.k, self.dim, counters)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_computes_norms() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::from_vec(2, 2, vec![3.0f32, 4.0, 1.0, 0.0]).unwrap();
        let cents = Matrix::from_vec(1, 2, vec![0.0f32, 2.0]).unwrap();
        let d = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        assert_eq!(d.sample_norms.to_vec(), vec![25.0, 1.0]);
        assert_eq!(d.centroid_norms.to_vec(), vec![4.0]);
        assert_eq!((d.m, d.k, d.dim), (2, 1, 2));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::zeros(4, 3);
        let cents = Matrix::<f64>::zeros(2, 5);
        assert!(DeviceData::upload(&dev, &samples, &cents, &c).is_err());
    }

    #[test]
    fn refresh_centroids_updates_norms() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::zeros(3, 2);
        let cents = Matrix::from_vec(2, 2, vec![1.0f64, 0.0, 0.0, 1.0]).unwrap();
        let mut d = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let new_c = Matrix::from_vec(2, 2, vec![2.0f64, 0.0, 0.0, 3.0]).unwrap();
        d.refresh_centroids(&dev, &new_c, &c).unwrap();
        assert_eq!(d.centroid_norms.to_vec(), vec![4.0, 9.0]);
        // wrong shape rejected
        let bad = Matrix::<f64>::zeros(3, 2);
        assert!(d.refresh_centroids(&dev, &bad, &c).is_err());
    }
}
