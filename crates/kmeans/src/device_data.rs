//! Device-resident problem state shared by all kernel variants.

use crate::norms::row_sq_norms_kernel;
use crate::quant::QuantCache;
use gpu_sim::memory::GlobalIndexBuffer;
use gpu_sim::{Counters, DeviceProfile, GlobalBuffer, Matrix, Scalar, SimError};
use std::sync::Arc;

/// Device-resident Hamerly bound state: the per-sample triangle-inequality
/// bounds plus the per-centroid geometry they are maintained against. Only
/// [`crate::config::Variant::Hamerly`] allocates this (via
/// [`DeviceData::ensure_bounds`]); every other variant leaves it `None`.
pub struct BoundState<T: Scalar> {
    /// Per-sample upper bound on the distance to the assigned centroid
    /// (Euclidean, not squared). Initialized to `+∞` so the first
    /// assignment pass is a full scan.
    pub upper: GlobalBuffer<T>,
    /// Per-sample lower bound on the distance to the second-closest
    /// centroid. Initialized to zero (vacuously sound).
    pub lower: GlobalBuffer<T>,
    /// Per-sample assigned centroid — the device-resident copy the pruned
    /// kernel reads back each iteration.
    pub labels: GlobalIndexBuffer,
    /// Per-centroid drift `‖c_old − c_new‖` of the most recent update.
    pub drift: GlobalBuffer<T>,
    /// Per-centroid half-distance to its nearest other centroid, deflated
    /// by the bound policy's slack.
    pub s_half: GlobalBuffer<T>,
}

impl<T: Scalar> BoundState<T> {
    fn new(m: usize, k: usize) -> Self {
        let state = BoundState {
            upper: GlobalBuffer::filled(m, T::INFINITY),
            lower: GlobalBuffer::zeros(m),
            labels: GlobalIndexBuffer::zeros(m),
            drift: GlobalBuffer::zeros(k),
            s_half: GlobalBuffer::zeros(k),
        };
        state.label_for_sanitizer();
        state
    }

    /// Name the bound buffers in sanitizer reports (no-op unless they were
    /// allocated under a `gpu_sim::sanitizer` checker).
    pub fn label_for_sanitizer(&self) {
        self.upper.set_sanitizer_label("bounds.upper");
        self.lower.set_sanitizer_label("bounds.lower");
        self.labels.set_sanitizer_label("bounds.labels");
        self.drift.set_sanitizer_label("bounds.drift");
        self.s_half.set_sanitizer_label("bounds.s_half");
    }
}

/// Samples, centroids and their squared norms, uploaded to simulated global
/// memory (Fig. 2 step 1: the `Samples²` / `Centroids²` terms are computed
/// once per iteration by dedicated kernels).
pub struct DeviceData<T: Scalar> {
    /// Samples, row-major `m x dim`.
    pub samples: GlobalBuffer<T>,
    /// Centroids, row-major `k x dim`.
    pub centroids: GlobalBuffer<T>,
    /// `‖x_i‖²` per sample.
    pub sample_norms: GlobalBuffer<T>,
    /// `‖y_j‖²` per centroid.
    pub centroid_norms: GlobalBuffer<T>,
    /// Number of samples (GEMM M).
    pub m: usize,
    /// Number of centroids (GEMM N).
    pub k: usize,
    /// Feature dimension (GEMM K).
    pub dim: usize,
    /// Hamerly bound state; `None` until [`DeviceData::ensure_bounds`].
    pub bounds: Option<BoundState<T>>,
    /// Lazily-built quantized centroid tables for the serving path. Shared
    /// (same `Arc`) by every device-pointer view of these centroids, so a
    /// table built once stays resident across predict calls; invalidated
    /// when the centroids are replaced.
    pub quant: Arc<QuantCache<T>>,
}

impl<T: Scalar> DeviceData<T> {
    /// Upload samples and centroids and compute both norm vectors with the
    /// squared-norm kernel.
    pub fn upload(
        device: &DeviceProfile,
        samples: &Matrix<T>,
        centroids: &Matrix<T>,
        counters: &Counters,
    ) -> Result<Self, SimError> {
        if samples.cols() != centroids.cols() {
            return Err(SimError::ShapeMismatch(format!(
                "samples dim {} != centroids dim {}",
                samples.cols(),
                centroids.cols()
            )));
        }
        let s = GlobalBuffer::from_matrix(samples);
        let c = GlobalBuffer::from_matrix(centroids);
        let sn = row_sq_norms_kernel(device, &s, samples.rows(), samples.cols(), counters)?;
        let cn = row_sq_norms_kernel(device, &c, centroids.rows(), centroids.cols(), counters)?;
        let data = DeviceData {
            samples: s,
            centroids: c,
            sample_norms: sn,
            centroid_norms: cn,
            m: samples.rows(),
            k: centroids.rows(),
            dim: samples.cols(),
            bounds: None,
            quant: Arc::new(QuantCache::default()),
        };
        data.label_for_sanitizer();
        Ok(data)
    }

    /// Name every resident buffer in sanitizer reports, so
    /// `gpu_sim::sanitizer` findings read `samples` / `centroids` /
    /// `bounds.upper` instead of allocation ordinals. No-op (one branch per
    /// buffer) unless the buffers were allocated under a checker.
    pub fn label_for_sanitizer(&self) {
        self.samples.set_sanitizer_label("samples");
        self.centroids.set_sanitizer_label("centroids");
        self.sample_norms.set_sanitizer_label("sample_norms");
        self.centroid_norms.set_sanitizer_label("centroid_norms");
        if let Some(b) = &self.bounds {
            b.label_for_sanitizer();
        }
    }

    /// Allocate the Hamerly bound buffers if not yet present. Fresh bounds
    /// are vacuous (`upper = +∞`, `lower = 0`), so the next pruned
    /// assignment degenerates to a full scan and rebuilds them exactly.
    pub fn ensure_bounds(&mut self) -> &BoundState<T> {
        if self.bounds.is_none() {
            self.bounds = Some(BoundState::new(self.m, self.k));
        }
        self.bounds.as_ref().expect("just ensured")
    }

    /// Upload new samples against this data's already-resident centroids:
    /// the centroid and centroid-norm buffers are *shared* (a
    /// device-pointer copy — no re-upload, no norm kernel re-run); only the
    /// query samples and their norms are new. This is the predict/score
    /// path of a fitted model.
    pub fn upload_samples_sharing_centroids(
        &self,
        device: &DeviceProfile,
        samples: &Matrix<T>,
        counters: &Counters,
    ) -> Result<Self, SimError> {
        if samples.cols() != self.dim {
            return Err(SimError::ShapeMismatch(format!(
                "samples dim {} != resident centroids dim {}",
                samples.cols(),
                self.dim
            )));
        }
        let s = GlobalBuffer::from_matrix(samples);
        s.set_sanitizer_label("query.samples");
        let sn = row_sq_norms_kernel(device, &s, samples.rows(), samples.cols(), counters)?;
        sn.set_sanitizer_label("query.sample_norms");
        Ok(DeviceData {
            samples: s,
            centroids: self.centroids.clone(),
            sample_norms: sn,
            centroid_norms: self.centroid_norms.clone(),
            m: samples.rows(),
            k: self.k,
            dim: self.dim,
            bounds: None,
            quant: Arc::clone(&self.quant),
        })
    }

    /// A zero-sample view sharing only this data's centroid and
    /// centroid-norm buffers (device-pointer copies). This is what a
    /// fitted model keeps resident: the training samples are never read
    /// again after a fit, so retaining them would pin `O(m x dim)` device
    /// memory per model for nothing.
    pub fn centroids_only(&self) -> Self {
        DeviceData {
            samples: GlobalBuffer::zeros(0),
            sample_norms: GlobalBuffer::zeros(0),
            centroids: self.centroids.clone(),
            centroid_norms: self.centroid_norms.clone(),
            m: 0,
            k: self.k,
            dim: self.dim,
            bounds: None,
            quant: Arc::clone(&self.quant),
        }
    }

    /// Replace the centroids (between Lloyd iterations) and refresh their
    /// norms.
    pub fn refresh_centroids(
        &mut self,
        device: &DeviceProfile,
        centroids: &Matrix<T>,
        counters: &Counters,
    ) -> Result<(), SimError> {
        if centroids.cols() != self.dim || centroids.rows() != self.k {
            return Err(SimError::ShapeMismatch(format!(
                "expected {}x{} centroids, got {}x{}",
                self.k,
                self.dim,
                centroids.rows(),
                centroids.cols()
            )));
        }
        self.centroids = GlobalBuffer::from_matrix(centroids);
        self.centroids.set_sanitizer_label("centroids");
        self.centroid_norms =
            row_sq_norms_kernel(device, &self.centroids, self.k, self.dim, counters)?;
        self.centroid_norms.set_sanitizer_label("centroid_norms");
        // cached quantized tables encode the old centroids — drop them so
        // the next quantized predict re-quantizes the fresh table
        self.quant.invalidate();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_computes_norms() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::from_vec(2, 2, vec![3.0f32, 4.0, 1.0, 0.0]).unwrap();
        let cents = Matrix::from_vec(1, 2, vec![0.0f32, 2.0]).unwrap();
        let d = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        assert_eq!(d.sample_norms.to_vec(), vec![25.0, 1.0]);
        assert_eq!(d.centroid_norms.to_vec(), vec![4.0]);
        assert_eq!((d.m, d.k, d.dim), (2, 1, 2));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::zeros(4, 3);
        let cents = Matrix::<f64>::zeros(2, 5);
        assert!(DeviceData::upload(&dev, &samples, &cents, &c).is_err());
    }

    #[test]
    fn sharing_upload_reuses_centroid_buffers() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::from_vec(2, 2, vec![3.0f64, 4.0, 1.0, 0.0]).unwrap();
        let cents = Matrix::from_vec(2, 2, vec![0.0f64, 2.0, 1.0, 1.0]).unwrap();
        let d = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();

        let queries = Matrix::from_vec(3, 2, vec![0.0f64, 0.0, 5.0, 5.0, 1.0, 1.0]).unwrap();
        let before = c.snapshot();
        let p = d
            .upload_samples_sharing_centroids(&dev, &queries, &c)
            .unwrap();
        assert_eq!(p.sample_norms.to_vec(), vec![0.0, 50.0, 2.0]);
        assert_eq!((p.m, p.k, p.dim), (3, 2, 2));
        // the centroid buffers are the same device memory, not copies:
        // a write through the original is visible through the share
        d.centroids.store(0, 7.0);
        assert_eq!(p.centroids.load(0), 7.0);
        // only the query-norm kernel launched (no centroid norm re-run)
        assert_eq!(c.snapshot().since(&before).kernel_launches, 1);
        // dimension mismatch rejected
        let bad = Matrix::<f64>::zeros(2, 5);
        assert!(d.upload_samples_sharing_centroids(&dev, &bad, &c).is_err());
    }

    #[test]
    fn refresh_centroids_updates_norms() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::zeros(3, 2);
        let cents = Matrix::from_vec(2, 2, vec![1.0f64, 0.0, 0.0, 1.0]).unwrap();
        let mut d = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        let new_c = Matrix::from_vec(2, 2, vec![2.0f64, 0.0, 0.0, 3.0]).unwrap();
        d.refresh_centroids(&dev, &new_c, &c).unwrap();
        assert_eq!(d.centroid_norms.to_vec(), vec![4.0, 9.0]);
        // wrong shape rejected
        let bad = Matrix::<f64>::zeros(3, 2);
        assert!(d.refresh_centroids(&dev, &bad, &c).is_err());
    }
}
