//! "Parameter1" and "Parameter2" — the two parameter sets "chosen based on
//! experience" that the paper sweeps alongside cuML (§V-A2).
//!
//! The paper does not publish their exact tiles, only their behaviour:
//! Parameter1 trails cuML by ~15–30% everywhere (an oversized, low-
//! occupancy choice); Parameter2 occasionally matches or slightly beats
//! cuML at small shapes but averages ~5–15% behind. The tiles below were
//! picked to reproduce those relationships under the timing model and are
//! validated by the Fig. 8–11 harness.

use gpu_sim::timing::TileConfig;
use gpu_sim::Precision;

/// An oversized "experience" choice: big tiles, poor occupancy — always
/// behind cuML.
pub fn parameter1(precision: Precision) -> TileConfig {
    match precision {
        Precision::Fp32 => TileConfig {
            tb_m: 128,
            tb_n: 256,
            tb_k: 16,
            wm: 64,
            wn: 64,
            k_stages: 3,
        },
        Precision::Fp64 => TileConfig {
            tb_m: 128,
            tb_n: 128,
            tb_k: 16,
            wm: 64,
            wn: 64,
            k_stages: 3,
        },
    }
}

/// A balanced "experience" choice: competitive at small shapes, slightly
/// behind cuML overall.
pub fn parameter2(precision: Precision) -> TileConfig {
    match precision {
        Precision::Fp32 => TileConfig {
            tb_m: 64,
            tb_n: 64,
            tb_k: 16,
            wm: 32,
            wn: 32,
            k_stages: 3,
        },
        Precision::Fp64 => TileConfig {
            tb_m: 32,
            tb_n: 64,
            tb_k: 16,
            wm: 32,
            wn: 32,
            k_stages: 3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_are_structurally_valid() {
        for p in Precision::all() {
            for t in [parameter1(p), parameter2(p)] {
                assert_eq!(t.tb_m % t.wm, 0);
                assert_eq!(t.tb_n % t.wn, 0);
                assert!(t.tb_k.is_power_of_two());
                assert!(t.warps() >= 1 && t.warps() <= 32);
            }
        }
    }

    #[test]
    fn parameter1_is_bigger_than_parameter2() {
        for p in Precision::all() {
            assert!(
                parameter1(p).tb_m * parameter1(p).tb_n > parameter2(p).tb_m * parameter2(p).tb_n
            );
        }
    }
}
