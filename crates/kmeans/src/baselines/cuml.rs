//! The cuML baseline: the same fused tensor-core kernel locked to cuML's
//! hard-coded tiling (Table I, "cuML" rows).
//!
//! "in the cluster assignment stage, it has hard-coded parameters in its
//! GEMM kernel, which can trigger low performance in some input sizes"
//! (§III-B). The comparison in the paper is therefore parameter choice, not
//! kernel structure — both run CUTLASS-style fused FusedDistanceNN kernels.

use gpu_sim::timing::TileConfig;
use gpu_sim::Precision;

/// cuML's fixed tile for a precision (Table I).
pub fn cuml_tile(precision: Precision) -> TileConfig {
    match precision {
        // Threadblock <32,256,16>, Warp <32,64,16>.
        Precision::Fp32 => TileConfig {
            tb_m: 32,
            tb_n: 256,
            tb_k: 16,
            wm: 32,
            wn: 64,
            k_stages: 3,
        },
        // Threadblock <64,64,16>, Warp <32,32,16>.
        Precision::Fp64 => TileConfig {
            tb_m: 64,
            tb_n: 64,
            tb_k: 16,
            wm: 32,
            wn: 32,
            k_stages: 3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_match_table1() {
        let t = cuml_tile(Precision::Fp32);
        assert_eq!((t.tb_m, t.tb_n, t.tb_k), (32, 256, 16));
        assert_eq!((t.wm, t.wn), (32, 64));
        let t = cuml_tile(Precision::Fp64);
        assert_eq!((t.tb_m, t.tb_n, t.tb_k), (64, 64, 16));
        assert_eq!((t.wm, t.wn), (32, 32));
    }

    #[test]
    fn warp_tiles_divide_threadblock_tiles() {
        for p in Precision::all() {
            let t = cuml_tile(p);
            assert_eq!(t.tb_m % t.wm, 0);
            assert_eq!(t.tb_n % t.wn, 0);
        }
    }
}
