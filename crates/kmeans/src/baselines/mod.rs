//! Comparison baselines: cuML's fixed kernel parameters and the two
//! hand-picked "selected by experience" parameter sets from the paper's
//! evaluation (§V-A2).

pub mod cuml;
pub mod params;

pub use cuml::cuml_tile;
pub use params::{parameter1, parameter2};
