//! Quantized resident centroid tables for the serving path.
//!
//! A fitted model's predict traffic is dominated by the centroid stream,
//! so the resident `k × dim` table is quantized once — fp16 bit patterns
//! or symmetric per-centroid int8 codes, packed into
//! [`GlobalPackedBuffer`] lanes — and every derived quantity the fused
//! predict kernel needs is cached alongside it: dequantized centroid
//! norms `‖ĉ_j‖²`, per-centroid int8 scales, the exact per-centroid
//! quantization displacements `e_j = ‖c_j − ĉ_j‖` feeding the
//! [`QuantMargin`] acceptance bound, and a content digest. Nothing is
//! re-derived per call.
//!
//! The digest is the norm/checksum guard for this resident state: a
//! bit flip anywhere in the codes, scales or cached norms changes the
//! FNV-1a digest, so [`QuantizedCentroids::verify`] catches it at predict
//! entry and the caller rebuilds the table from the fp centroids (which
//! carry their own protection) — flips in quantized state are detected,
//! never silent.

use abft::QuantMargin;
use gpu_sim::{Counters, EventSink, GlobalBuffer, GlobalPackedBuffer, Scalar};
use parking_lot::Mutex;
use std::sync::Arc;

/// Convert an `f32` to IEEE-754 binary16 bits with round-to-nearest-even.
///
/// Finite values beyond the f16 range *saturate* to ±65504 (the largest
/// finite f16) instead of overflowing to infinity: a saturated centroid
/// row keeps its distances finite and its exact displacement `e_j`
/// simply grows, so the margin policy routes affected samples to the
/// exact fallback rather than poisoning every comparison. `±∞` and NaN
/// pass through as `±∞` / NaN.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // propagate inf / NaN
        return if man != 0 {
            sign | 0x7e00
        } else {
            sign | 0x7c00
        };
    }
    let e = exp - 127 + 15; // biased f16 exponent
    if e >= 31 {
        return sign | 0x7bff; // finite overflow saturates to ±65504
    }
    if e <= 0 {
        // subnormal (or zero) result: magnitude = round(m24 · 2^(e2+1)) · 2^-24
        if e < -10 {
            return sign; // underflows to ±0 (RNE: below half the smallest subnormal)
        }
        let m24 = man | 0x0080_0000;
        let shift = (1 - e) as u32 + 13;
        let kept = m24 >> shift;
        let rest = m24 & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round_up = rest > half || (rest == half && (kept & 1) == 1);
        return sign | (kept + round_up as u32) as u16;
    }
    let kept = man >> 13;
    let rest = man & 0x1fff;
    let round_up = rest > 0x1000 || (rest == 0x1000 && (kept & 1) == 1);
    let h = ((e as u32) << 10 | kept) + round_up as u32;
    if h >= 0x7c00 {
        sign | 0x7bff // rounding crossed into the infinity encoding: saturate
    } else {
        sign | h as u16
    }
}

/// Convert IEEE-754 binary16 bits back to `f32` (exact — every f16 value
/// is representable in f32).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    match exp {
        0 => {
            // ±0 and subnormals: magnitude = man · 2^-24
            let mag = man as f32 * f32::from_bits(0x3380_0000);
            if sign != 0 {
                -mag
            } else {
                mag
            }
        }
        31 => {
            if man != 0 {
                f32::NAN
            } else if sign != 0 {
                f32::NEG_INFINITY
            } else {
                f32::INFINITY
            }
        }
        _ => f32::from_bits(sign | ((exp + 112) << 23) | (man << 13)),
    }
}

/// FNV-1a over a stream of 64-bit words — the content digest guarding
/// quantized resident state (and the sample-identity fingerprint of the
/// predict memo).
pub fn fnv1a64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Which reduced-precision storage format a table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantKind {
    /// IEEE binary16 bit patterns (2 bytes/element, ~2^-11 relative error).
    Fp16,
    /// Symmetric per-centroid int8 codes (1 byte/element, error ≤ scale/2).
    Int8,
}

impl QuantKind {
    /// Short lowercase token (CSV/table label).
    pub fn label(self) -> &'static str {
        match self {
            QuantKind::Fp16 => "fp16",
            QuantKind::Int8 => "int8",
        }
    }
}

/// The packed code storage of a quantized table.
#[derive(Debug, Clone)]
pub enum QuantCodes {
    /// fp16 bit patterns, 4 lanes per device word.
    Fp16(GlobalPackedBuffer<u16>),
    /// int8 two's-complement codes, 8 lanes per device word.
    Int8(GlobalPackedBuffer<u8>),
}

/// A quantized resident centroid table plus every cached derived quantity
/// the fused predict kernel reads — built once, re-derived never.
#[derive(Debug, Clone)]
pub struct QuantizedCentroids<T: Scalar> {
    /// Storage format.
    pub kind: QuantKind,
    /// Centroid count.
    pub k: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Packed quantization codes, row-major `k × dim`.
    pub codes: QuantCodes,
    /// Per-centroid int8 dequantization scales (filled with `1` for fp16 —
    /// uniform layout keeps the kernel branch-free over rows).
    pub scales: GlobalBuffer<T>,
    /// Cached dequantized centroid norms `‖ĉ_j‖²`.
    pub norms: GlobalBuffer<T>,
    /// Exact per-centroid quantization displacement `e_j = ‖c_j − ĉ_j‖`
    /// (host-resident policy metadata, computed in f64 at build).
    pub err_norms: Vec<f64>,
    /// `max_j ‖ĉ_j‖²` — the cancellation magnitude term of the margin.
    pub max_norm_sq: f64,
    /// The acceptance bound for this table.
    pub margin: QuantMargin,
    digest: u64,
}

impl<T: Scalar> QuantizedCentroids<T> {
    /// Quantize the resident fp centroid table (`k × dim`, row-major in
    /// `centroids`). Charges the one-time read of the fp table to
    /// `counters`; everything derived here is cached in the result.
    pub fn build(centroids: &GlobalBuffer<T>, k: usize, dim: usize, kind: QuantKind) -> Self {
        assert_eq!(centroids.len(), k * dim, "table shape mismatch");
        let mut row = vec![T::ZERO; dim];
        let mut scales = vec![T::ONE; k];
        let mut norms = vec![T::ZERO; k];
        let mut err_norms = vec![0.0f64; k];
        let mut lanes16 = Vec::new();
        let mut lanes8 = Vec::new();
        if matches!(kind, QuantKind::Fp16) {
            lanes16.reserve(k * dim);
        } else {
            lanes8.reserve(k * dim);
        }
        for j in 0..k {
            centroids.read_range(j * dim, &mut row);
            let scale_t = match kind {
                QuantKind::Fp16 => T::ONE,
                QuantKind::Int8 => {
                    let amax = row.iter().fold(0.0f64, |m, v| m.max(v.to_f64().abs()));
                    if amax == 0.0 || !amax.is_finite() {
                        T::ONE
                    } else {
                        T::from_f64(amax / 127.0)
                    }
                }
            };
            scales[j] = scale_t;
            let mut norm = T::ZERO;
            let mut err_sq = 0.0f64;
            for &v in row.iter() {
                let deq = match kind {
                    QuantKind::Fp16 => {
                        let code = f32_to_f16_bits(v.to_f64() as f32);
                        lanes16.push(code);
                        dequant_fp16::<T>(code)
                    }
                    QuantKind::Int8 => {
                        let s = scale_t.to_f64();
                        let q = (v.to_f64() / s).round().clamp(-127.0, 127.0);
                        let code = q as i8 as u8;
                        lanes8.push(code);
                        dequant_int8::<T>(code, scale_t)
                    }
                };
                norm += deq * deq;
                let d = v.to_f64() - deq.to_f64();
                err_sq += d * d;
            }
            norms[j] = norm;
            err_norms[j] = err_sq.sqrt();
        }
        let codes = match kind {
            QuantKind::Fp16 => QuantCodes::Fp16(GlobalPackedBuffer::from_slice(&lanes16)),
            QuantKind::Int8 => QuantCodes::Int8(GlobalPackedBuffer::from_slice(&lanes8)),
        };
        match &codes {
            QuantCodes::Fp16(b) => b.set_sanitizer_label("quant.codes.fp16"),
            QuantCodes::Int8(b) => b.set_sanitizer_label("quant.codes.int8"),
        }
        let err_norm_max = err_norms.iter().fold(0.0f64, |m, &e| m.max(e));
        let max_norm_sq = norms.iter().fold(0.0f64, |m, n| m.max(n.to_f64()));
        let mut table = QuantizedCentroids {
            kind,
            k,
            dim,
            codes,
            scales: {
                let b = GlobalBuffer::from_slice(&scales);
                b.set_sanitizer_label("quant.scales");
                b
            },
            norms: {
                let b = GlobalBuffer::from_slice(&norms);
                b.set_sanitizer_label("quant.norms");
                b
            },
            err_norms,
            max_norm_sq,
            margin: QuantMargin::new(err_norm_max, T::PRECISION, dim),
            digest: 0,
        };
        table.digest = table.compute_digest();
        table
    }

    /// Packed bytes of the code table — the resident state the format
    /// exists to shrink (2 bytes/element fp16, 1 byte/element int8, vs 4/8
    /// for the fp table).
    pub fn code_bytes(&self) -> usize {
        self.k
            * self.dim
            * match self.kind {
                QuantKind::Fp16 => 2,
                QuantKind::Int8 => 1,
            }
    }

    fn compute_digest(&self) -> u64 {
        let words = match &self.codes {
            QuantCodes::Fp16(b) => b.raw_words(),
            QuantCodes::Int8(b) => b.raw_words(),
        };
        let stream = [self.kind as u64, self.k as u64, self.dim as u64]
            .into_iter()
            .chain(words)
            .chain(self.scales.to_vec().into_iter().map(|v| v.to_raw_u64()))
            .chain(self.norms.to_vec().into_iter().map(|v| v.to_raw_u64()))
            .chain(self.err_norms.iter().map(|e| e.to_bits()));
        fnv1a64(stream)
    }

    /// The checksum guard: true when codes, scales, cached norms and
    /// displacement metadata still match the digest taken at build. Run at
    /// predict entry; a mismatch means the quantized resident state was
    /// corrupted and must be rebuilt from the fp centroids.
    pub fn verify(&self) -> bool {
        self.compute_digest() == self.digest
    }

    /// Stage the whole table for a threadblock: bulk-load the packed codes
    /// (charged at the packed byte width), the scale and norm vectors, and
    /// dequantize into `cents` (`k × dim`, row-major) with `qnorms`
    /// receiving the cached `‖ĉ_j‖²`. The dequantized values live in the
    /// block's registers/scratch — the fp32 accumulation operands.
    pub fn stage_dequantized<C: EventSink + ?Sized>(
        &self,
        cents: &mut [T],
        qnorms: &mut [T],
        scales: &mut [T],
        counters: &C,
    ) {
        assert_eq!(cents.len(), self.k * self.dim);
        assert_eq!(qnorms.len(), self.k);
        assert_eq!(scales.len(), self.k);
        self.scales.load_run(0, scales, counters);
        self.norms.load_run(0, qnorms, counters);
        match &self.codes {
            QuantCodes::Fp16(codes) => {
                let mut lanes = vec![0u16; self.dim];
                for j in 0..self.k {
                    codes.load_run(j * self.dim, &mut lanes, counters);
                    for (dst, &code) in cents[j * self.dim..(j + 1) * self.dim]
                        .iter_mut()
                        .zip(lanes.iter())
                    {
                        *dst = dequant_fp16::<T>(code);
                    }
                }
            }
            QuantCodes::Int8(codes) => {
                let mut lanes = vec![0u8; self.dim];
                for j in 0..self.k {
                    codes.load_run(j * self.dim, &mut lanes, counters);
                    let s = scales[j];
                    for (dst, &code) in cents[j * self.dim..(j + 1) * self.dim]
                        .iter_mut()
                        .zip(lanes.iter())
                    {
                        *dst = dequant_int8::<T>(code, s);
                    }
                }
            }
        }
    }

    /// Flip one bit of one code lane — the campaign's fault-injection
    /// surface for quantized resident state.
    pub fn corrupt_code_bit(&self, idx: usize, bit: u32) {
        match &self.codes {
            QuantCodes::Fp16(b) => b.corrupt_bit(idx, bit),
            QuantCodes::Int8(b) => b.corrupt_bit(idx, bit),
        }
    }
}

/// Dequantize one fp16 code into the accumulation type.
#[inline]
pub fn dequant_fp16<T: Scalar>(code: u16) -> T {
    T::from_f64(f16_bits_to_f32(code) as f64)
}

/// Dequantize one symmetric int8 code with its centroid's scale.
#[inline]
pub fn dequant_int8<T: Scalar>(code: u8, scale: T) -> T {
    T::from_f64(code as i8 as f64) * scale
}

/// Lazily-built per-model cache of quantized tables, shared between a
/// model's resident [`crate::DeviceData`] and any per-call views of it
/// (the cache rides an `Arc`, so a device-pointer view shares the same
/// tables). One slot per [`QuantKind`]; [`QuantCache::invalidate`] empties
/// both when the centroids are replaced.
#[derive(Debug, Default)]
pub struct QuantCache<T: Scalar> {
    slots: Mutex<[Option<Arc<QuantizedCentroids<T>>>; 2]>,
}

impl<T: Scalar> QuantCache<T> {
    fn slot(kind: QuantKind) -> usize {
        match kind {
            QuantKind::Fp16 => 0,
            QuantKind::Int8 => 1,
        }
    }

    /// The table for `kind`, building it (once) from the fp centroids on
    /// first use. The one-time fp-table read is charged to `counters`.
    pub fn get_or_build(
        &self,
        kind: QuantKind,
        centroids: &GlobalBuffer<T>,
        k: usize,
        dim: usize,
        counters: &Counters,
    ) -> Arc<QuantizedCentroids<T>> {
        let mut slots = self.slots.lock();
        let slot = &mut slots[Self::slot(kind)];
        if let Some(table) = slot {
            return Arc::clone(table);
        }
        let table = crate::phase::traced(
            trace::phases::QUANT_BUILD,
            Self::slot(kind) as u64,
            counters,
            || {
                counters.add_loaded((k * dim * std::mem::size_of::<T>()) as u64);
                Arc::new(QuantizedCentroids::build(centroids, k, dim, kind))
            },
        );
        *slot = Some(Arc::clone(&table));
        table
    }

    /// Drop a (possibly corrupted) cached table and rebuild it from the fp
    /// centroids. Returns the fresh table.
    pub fn rebuild(
        &self,
        kind: QuantKind,
        centroids: &GlobalBuffer<T>,
        k: usize,
        dim: usize,
        counters: &Counters,
    ) -> Arc<QuantizedCentroids<T>> {
        self.slots.lock()[Self::slot(kind)] = None;
        self.get_or_build(kind, centroids, k, dim, counters)
    }

    /// Empty every slot (the centroids changed; cached tables are stale).
    pub fn invalidate(&self) {
        *self.slots.lock() = [None, None];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrips_representable_values() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            6552.0 / 65536.0, // 0.0999755859375, exactly representable in f16
            65504.0,
            2.0f32.powi(-14),
            2.0f32.powi(-24),
        ] {
            let code = f32_to_f16_bits(v);
            let back = f16_bits_to_f32(code);
            assert_eq!(back.to_bits(), v.to_bits(), "{v} not preserved");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and 1 + 2^-10: ties to even → 1.0
        let tie = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(tie)), 1.0);
        // just above the tie rounds up
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-13);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(above)),
            1.0 + 2.0f32.powi(-10)
        );
    }

    #[test]
    fn f16_saturates_finite_overflow_and_propagates_nonfinite() {
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e9)), 65504.0);
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(-1e9)), -65504.0);
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(f32::INFINITY)),
            f32::INFINITY
        );
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        // tiny values flush to signed zero
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(1e-30)).to_bits(),
            0.0f32.to_bits()
        );
        assert_eq!(
            f16_bits_to_f32(f32_to_f16_bits(-1e-30)).to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    fn f16_relative_error_within_advertised_bound() {
        for i in 0..2000 {
            let v = (i as f32 * 0.37 - 350.0) * 1.7;
            let err = (f16_bits_to_f32(f32_to_f16_bits(v)) - v).abs();
            assert!(
                err <= v.abs() * 2.0f32.powi(-11) + 2.0f32.powi(-24),
                "|{v}| err {err}"
            );
        }
    }

    #[test]
    fn int8_build_quantizes_within_half_scale() {
        let vals: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) * 3.1).collect();
        let buf = GlobalBuffer::from_slice(&vals);
        let t = QuantizedCentroids::build(&buf, 2, 16, QuantKind::Int8);
        let mut cents = vec![0.0f32; 32];
        let mut qn = vec![0.0f32; 2];
        let mut sc = vec![0.0f32; 2];
        let c = Counters::new();
        t.stage_dequantized(&mut cents, &mut qn, &mut sc, &c);
        for (j, chunk) in cents.chunks(16).enumerate() {
            let half = sc[j] as f64 * 0.51;
            for (a, b) in chunk.iter().zip(&vals[j * 16..]) {
                assert!((*a as f64 - *b as f64).abs() <= half, "{a} vs {b}");
            }
        }
        // cached norms match the staged dequantized rows
        for (j, chunk) in cents.chunks(16).enumerate() {
            let norm: f32 = chunk.iter().map(|v| v * v).sum();
            assert_eq!(norm.to_bits(), qn[j].to_bits());
        }
        // displacement metadata is exact and bounded by sqrt(dim)·scale/2-ish
        assert!(t.err_norms[0] <= 4.0 * sc[0] as f64 * 0.51);
        assert!(t.margin.err_norm_max >= t.err_norms[0].min(t.err_norms[1]));
    }

    #[test]
    fn zero_row_gets_unit_scale_and_zero_error() {
        let buf = GlobalBuffer::from_slice(&[0.0f64; 8]);
        let t = QuantizedCentroids::build(&buf, 1, 8, QuantKind::Int8);
        assert_eq!(t.scales.to_vec(), vec![1.0]);
        assert_eq!(t.err_norms, vec![0.0]);
        assert_eq!(t.norms.to_vec(), vec![0.0]);
    }

    #[test]
    fn staging_charges_packed_traffic() {
        let vals: Vec<f32> = (0..64).map(|i| i as f32 * 0.25).collect();
        let buf = GlobalBuffer::from_slice(&vals);
        let t8 = QuantizedCentroids::build(&buf, 4, 16, QuantKind::Int8);
        let c = Counters::new();
        let (mut cents, mut qn, mut sc) = (vec![0.0f32; 64], vec![0.0f32; 4], vec![0.0f32; 4]);
        t8.stage_dequantized(&mut cents, &mut qn, &mut sc, &c);
        // codes at 1 byte/lane + scales and norms at 4 bytes each
        assert_eq!(c.snapshot().bytes_loaded, 64 + 2 * 4 * 4);
        let t16 = QuantizedCentroids::build(&buf, 4, 16, QuantKind::Fp16);
        let c = Counters::new();
        t16.stage_dequantized(&mut cents, &mut qn, &mut sc, &c);
        assert_eq!(c.snapshot().bytes_loaded, 64 * 2 + 2 * 4 * 4);
        assert_eq!(t16.code_bytes(), 128);
        assert_eq!(t8.code_bytes(), 64);
    }

    #[test]
    fn digest_guard_detects_any_flip() {
        let vals: Vec<f64> = (0..24).map(|i| (i as f64 - 11.0) * 0.7).collect();
        let t = QuantizedCentroids::build(&GlobalBuffer::from_slice(&vals), 3, 8, QuantKind::Fp16);
        assert!(t.verify(), "fresh table verifies");
        t.corrupt_code_bit(13, 9);
        assert!(!t.verify(), "code flip detected");
        t.corrupt_code_bit(13, 9);
        assert!(t.verify(), "restored");
        // flips in the cached norms are covered too
        let prev = t.norms.load(1);
        t.norms.store(1, prev.flip_bit(52));
        assert!(!t.verify(), "norm flip detected");
        t.norms.store(1, prev);
        assert!(t.verify());
        // and the int8 scale vector
        let t8 = QuantizedCentroids::build(&GlobalBuffer::from_slice(&vals), 3, 8, QuantKind::Int8);
        let s = t8.scales.load(2);
        t8.scales.store(2, s.flip_bit(30));
        assert!(!t8.verify(), "scale flip detected");
    }

    #[test]
    fn cache_builds_once_and_invalidates() {
        let vals: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let buf = GlobalBuffer::from_slice(&vals);
        let cache = QuantCache::<f32>::default();
        let c = Counters::new();
        let a = cache.get_or_build(QuantKind::Int8, &buf, 4, 8, &c);
        let loaded_once = c.snapshot().bytes_loaded;
        assert_eq!(loaded_once, 32 * 4, "one fp-table read charged");
        let b = cache.get_or_build(QuantKind::Int8, &buf, 4, 8, &c);
        assert!(Arc::ptr_eq(&a, &b), "second call hits the cache");
        assert_eq!(c.snapshot().bytes_loaded, loaded_once, "no re-read");
        cache.invalidate();
        let d = cache.get_or_build(QuantKind::Int8, &buf, 4, 8, &c);
        assert!(!Arc::ptr_eq(&a, &d), "invalidate forces a rebuild");
        let e = cache.rebuild(QuantKind::Int8, &buf, 4, 8, &c);
        assert!(!Arc::ptr_eq(&d, &e));
    }

    #[test]
    fn fnv_distinguishes_streams() {
        assert_ne!(fnv1a64([1u64, 2]), fnv1a64([2u64, 1]));
        assert_ne!(fnv1a64([0u64]), fnv1a64([] as [u64; 0]));
        assert_eq!(fnv1a64([7u64, 9]), fnv1a64(vec![7u64, 9]));
    }
}
