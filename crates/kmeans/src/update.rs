//! Centroid-update phase (Fig. 2 step 3) with optional DMR protection.
//!
//! One fused kernel accumulates every sample into its assigned centroid via
//! `atomicAdd` and bumps the member counter; a second kernel averages. The
//! phase is memory-bound, so duplicating the arithmetic (DMR) and voting
//! hides behind the loads — the paper measures <1% overhead (§I, §IV).

use abft::dmr::{protected, DmrStats};
use gpu_sim::memory::GlobalIndexBuffer;
use gpu_sim::mma::{FaultHook, MmaSite};
use gpu_sim::{
    launch_grid_labeled, Counters, DeviceProfile, Dim3, GlobalBuffer, LaunchConfig, Matrix, Scalar,
    ScratchBuf, SimError,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Samples per threadblock in the accumulation kernel.
const SAMPLES_PER_BLOCK: usize = 256;

/// Centroid-matrix elements per threadblock in the averaging kernel.
const ELEMS_PER_BLOCK: usize = 256;

/// Result of the update phase.
#[derive(Debug, Clone)]
pub struct UpdateResult<T> {
    /// New centroid positions (empty clusters keep their previous ones).
    pub centroids: Matrix<T>,
    /// Members per cluster.
    pub counts: Vec<u32>,
    /// DMR statistics (zeros when DMR was off).
    pub dmr: DmrStats,
    /// Labels found out of range `[0, k)` and excluded from the
    /// accumulation — a fault-injected bit flip in a label is *detected*
    /// here instead of indexing the sums buffer out of bounds.
    pub oob_labels: u64,
}

/// Run the centroid update.
#[allow(clippy::too_many_arguments)]
pub fn update_centroids<T: Scalar>(
    device: &DeviceProfile,
    samples: &GlobalBuffer<T>,
    m: usize,
    dim: usize,
    labels: &[u32],
    old_centroids: &Matrix<T>,
    dmr: bool,
    hook: &dyn FaultHook<T>,
    counters: &Counters,
) -> Result<UpdateResult<T>, SimError> {
    if labels.len() != m {
        return Err(SimError::ShapeMismatch(format!(
            "{} labels for {m} samples",
            labels.len()
        )));
    }
    let k = old_centroids.rows();
    let sums = GlobalBuffer::<T>::zeros(k * dim);
    sums.set_sanitizer_label("update.sums");
    let count_buf = GlobalIndexBuffer::zeros(k);
    count_buf.set_sanitizer_label("update.counts");
    let dmr_stats = Mutex::new(DmrStats::default());
    let oob_labels = AtomicU64::new(0);

    // Kernel 1: fused accumulation — "each thread … uses atomic add to add
    // the values of this sample in every dimension to its assigned centroid
    // and add one to the counter" (§III-A2).
    let grid = Dim3::x(m.div_ceil(SAMPLES_PER_BLOCK).max(1));
    let cfg = LaunchConfig {
        grid,
        threads_per_block: 256,
        smem_bytes: 0,
    };
    launch_grid_labeled(device, cfg, counters, "update_accumulate", |ctx| {
        let row0 = ctx.bx * SAMPLES_PER_BLOCK;
        let mut local_dmr = DmrStats::default();
        // Sample rows stream through block-local scratch as contiguous runs;
        // the scattered atomicAdds stay per-element (they are data-dependent
        // and uncoalescable by construction).
        let mut xrow = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        for (i, &label) in labels
            .iter()
            .enumerate()
            .take((row0 + SAMPLES_PER_BLOCK).min(m))
            .skip(row0)
        {
            let c = label as usize;
            if c >= k {
                // A bit flip in a label (fail-continue fault model) must
                // not index the sums buffer out of bounds: detect it and
                // drop the sample from this update.
                oob_labels.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            samples.load_run(i * dim, &mut xrow, ctx.counters);
            for (d, &x) in xrow.iter().enumerate() {
                let site = MmaSite {
                    block: (ctx.bx, 0),
                    warp: 0,
                    k_step: d,
                    is_checksum: false,
                };
                let v = if dmr {
                    // Duplicated arithmetic: both replicas run the same FMA
                    // through the fault hook; disagreement is voted out.
                    protected(|_| hook.post_fma(&site, x), 3, &mut local_dmr)
                } else {
                    hook.post_fma(&site, x)
                };
                ctx.counters.add_fma(if dmr { 2 } else { 1 });
                sums.atomic_add(c * dim + d, v, ctx.counters);
            }
            count_buf.atomic_inc(c, ctx.counters);
        }
        if dmr {
            dmr_stats.lock().merge(&local_dmr);
        }
    })?;

    // Kernel 2: averaging — one thread per centroid-matrix *element*, so
    // the division work spreads over the worker pool even at small k
    // (k x dim elements rather than k rows of serial dim-loops).
    let out = GlobalBuffer::<T>::zeros(k * dim);
    out.set_sanitizer_label("update.out");
    let cfg2 = LaunchConfig {
        grid: Dim3::x((k * dim).div_ceil(ELEMS_PER_BLOCK).max(1)),
        threads_per_block: 256,
        smem_bytes: 0,
    };
    let old = GlobalBuffer::from_matrix(old_centroids);
    old.set_sanitizer_label("update.old");
    launch_grid_labeled(device, cfg2, counters, "update_divide", |ctx| {
        let e0 = ctx.bx * ELEMS_PER_BLOCK;
        let mut local_dmr = DmrStats::default();
        for e in e0..(e0 + ELEMS_PER_BLOCK).min(k * dim) {
            let (c, d) = (e / dim, e % dim);
            let n = count_buf.load(c);
            let v = if n == 0 {
                old.load_counted(e, ctx.counters)
            } else {
                let s = sums.load_counted(e, ctx.counters);
                let site = MmaSite {
                    block: (ctx.bx, 0),
                    warp: 1,
                    k_step: d,
                    is_checksum: false,
                };
                let divide = |_: u32| hook.post_fma(&site, s / T::from_usize(n as usize));
                if dmr {
                    protected(divide, 3, &mut local_dmr)
                } else {
                    divide(0)
                }
            };
            out.store_counted(e, v, ctx.counters);
        }
        if dmr {
            dmr_stats.lock().merge(&local_dmr);
        }
    })?;

    let dmr = *dmr_stats.lock();
    Ok(UpdateResult {
        centroids: out.to_matrix(k, dim),
        counts: count_buf.to_vec(),
        dmr,
        oob_labels: oob_labels.into_inner(),
    })
}

/// The *basic* update of §III-A1: one kernel launch **per centroid**, each
/// scanning every sample and accumulating only the matching ones ("launching
/// N kernels is a great waste of time, because, in kernel j, a large number
/// of threads are idle", §III-A2). Kept as the baseline the fused update is
/// measured against; functionally identical to [`update_centroids`].
pub fn update_centroids_naive<T: Scalar>(
    device: &DeviceProfile,
    samples: &GlobalBuffer<T>,
    m: usize,
    dim: usize,
    labels: &[u32],
    old_centroids: &Matrix<T>,
    counters: &Counters,
) -> Result<UpdateResult<T>, SimError> {
    if labels.len() != m {
        return Err(SimError::ShapeMismatch(format!(
            "{} labels for {m} samples",
            labels.len()
        )));
    }
    let k = old_centroids.rows();
    let sums = GlobalBuffer::<T>::zeros(k * dim);
    sums.set_sanitizer_label("update.sums");
    let count_buf = GlobalIndexBuffer::zeros(k);
    count_buf.set_sanitizer_label("update.counts");
    // The per-cluster equality scan below never matches an out-of-range
    // label, so corrupted samples drop out implicitly; count them up front
    // so detection accounting matches the fused path.
    let oob = labels.iter().filter(|&&l| l as usize >= k).count() as u64;

    // One launch per centroid; every thread reads its sample even when the
    // sample belongs elsewhere — the idle-thread waste the paper calls out.
    for cluster in 0..k {
        let grid = Dim3::x(m.div_ceil(SAMPLES_PER_BLOCK).max(1));
        let cfg = LaunchConfig {
            grid,
            threads_per_block: 256,
            smem_bytes: 0,
        };
        launch_grid_labeled(device, cfg, counters, "update_naive_scan", |ctx| {
            let row0 = ctx.bx * SAMPLES_PER_BLOCK;
            let end = (row0 + SAMPLES_PER_BLOCK).min(m);
            for (i, &label) in labels.iter().enumerate().take(end).skip(row0) {
                // the label read happens regardless of membership
                let belongs = label as usize == cluster;
                ctx.counters.add_loaded(4);
                if belongs {
                    for d in 0..dim {
                        let x = samples.load_counted(i * dim + d, ctx.counters);
                        sums.atomic_add(cluster * dim + d, x, ctx.counters);
                    }
                    count_buf.atomic_inc(cluster, ctx.counters);
                }
            }
        })?;
    }

    // Final averaging kernel (identical to the fused path's kernel 2).
    let out = GlobalBuffer::<T>::zeros(k * dim);
    out.set_sanitizer_label("update.out");
    let cfg2 = LaunchConfig {
        grid: Dim3::x(k.div_ceil(SAMPLES_PER_BLOCK).max(1)),
        threads_per_block: 256,
        smem_bytes: 0,
    };
    let old = GlobalBuffer::from_matrix(old_centroids);
    old.set_sanitizer_label("update.old");
    launch_grid_labeled(device, cfg2, counters, "update_naive_divide", |ctx| {
        let c0 = ctx.bx * SAMPLES_PER_BLOCK;
        for c in c0..(c0 + SAMPLES_PER_BLOCK).min(k) {
            let n = count_buf.load(c);
            for d in 0..dim {
                let v = if n == 0 {
                    old.load_counted(c * dim + d, ctx.counters)
                } else {
                    sums.load_counted(c * dim + d, ctx.counters) / T::from_usize(n as usize)
                };
                out.store_counted(c * dim + d, v, ctx.counters);
            }
        }
    })?;

    Ok(UpdateResult {
        centroids: out.to_matrix(k, dim),
        counts: count_buf.to_vec(),
        dmr: DmrStats::default(),
        oob_labels: oob,
    })
}

/// Per-centroid drift `‖c_old − c_new‖` of one update step, written into
/// `out` (length `k`) and returned as its maximum — the two quantities the
/// Hamerly variant loosens its bounds by. A standalone kernel (one block
/// per centroid, counted bulk row loads) so the fused update keeps its
/// exact two-launch profile; the driver folds it into the update phase
/// only for [`crate::config::Variant::Hamerly`] fits.
pub fn centroid_drift<T: Scalar>(
    device: &DeviceProfile,
    old: &GlobalBuffer<T>,
    new: &GlobalBuffer<T>,
    k: usize,
    dim: usize,
    out: &GlobalBuffer<T>,
    counters: &Counters,
) -> Result<T, SimError> {
    if old.len() != k * dim || new.len() != k * dim || out.len() != k {
        return Err(SimError::ShapeMismatch(format!(
            "drift buffers: old {} new {} out {} for k={k} dim={dim}",
            old.len(),
            new.len(),
            out.len()
        )));
    }
    let cfg = LaunchConfig {
        grid: Dim3::x(k.max(1)),
        threads_per_block: 32,
        smem_bytes: 0,
    };
    launch_grid_labeled(device, cfg, counters, "centroid_drift", |ctx| {
        let j = ctx.bx;
        if j >= k {
            return;
        }
        let mut a = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        let mut b = ScratchBuf::<T, 256>::filled(dim, T::ZERO);
        old.load_run(j * dim, &mut a, ctx.counters);
        new.load_run(j * dim, &mut b, ctx.counters);
        let mut acc = T::ZERO;
        for (&av, &bv) in a.iter().zip(b.iter()) {
            let diff = av - bv;
            acc += diff * diff;
        }
        ctx.counters.add_fma((2 * dim) as u64);
        out.store_counted(j, acc.max_s(T::ZERO).sqrt(), ctx.counters);
    })?;
    let mut max_drift = T::ZERO;
    for d in out.to_vec() {
        max_drift = max_drift.max_s(d);
    }
    Ok(max_drift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::update_reference;
    use fault::{Injector, PlannedInjection};
    use gpu_sim::mma::NoFault;

    fn setup(m: usize, dim: usize, k: usize) -> (Matrix<f64>, Vec<u32>, Matrix<f64>) {
        let samples = Matrix::<f64>::from_fn(m, dim, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let labels: Vec<u32> = (0..m).map(|i| (i % k) as u32).collect();
        let old = Matrix::<f64>::from_fn(k, dim, |r, c| (r + c) as f64);
        (samples, labels, old)
    }

    #[test]
    fn matches_reference_update() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, labels, old) = setup(100, 5, 7);
        let buf = GlobalBuffer::from_matrix(&samples);
        let out = update_centroids(&dev, &buf, 100, 5, &labels, &old, false, &NoFault, &c).unwrap();
        let (want, want_counts) = update_reference(&samples, &labels, &old);
        assert_eq!(out.counts, want_counts);
        assert!(out.centroids.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn empty_cluster_keeps_old_position() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f32>::filled(4, 2, 1.0);
        let labels = vec![0, 0, 0, 0];
        let old = Matrix::from_vec(2, 2, vec![0.0f32, 0.0, 7.0, 8.0]).unwrap();
        let out = update_centroids(
            &dev,
            &GlobalBuffer::from_matrix(&samples),
            4,
            2,
            &labels,
            &old,
            false,
            &NoFault,
            &c,
        )
        .unwrap();
        assert_eq!(out.counts, vec![4, 0]);
        assert_eq!(out.centroids.get(1, 0), 7.0);
        assert_eq!(out.centroids.get(1, 1), 8.0);
        assert_eq!(out.centroids.get(0, 0), 1.0);
    }

    #[test]
    fn dmr_votes_out_injected_fault() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, labels, old) = setup(64, 4, 4);
        let buf = GlobalBuffer::from_matrix(&samples);
        // One planned strike on the accumulation FMA of block 0.
        let inj = Injector::planned(vec![PlannedInjection {
            block: (0, 0),
            warp: 0,
            k_step: 2,
            elem_idx: 0,
            bit: 62,
            target_checksum: false,
        }]);
        let out = update_centroids(&dev, &buf, 64, 4, &labels, &old, true, &inj, &c).unwrap();
        assert_eq!(inj.injected_count(), 1);
        assert_eq!(out.dmr.mismatches, 1, "DMR caught the corrupted replica");
        let (want, _) = update_reference(&samples, &labels, &old);
        assert!(
            out.centroids.max_abs_diff(&want) < 1e-9,
            "result unaffected"
        );
    }

    #[test]
    fn unprotected_update_is_corrupted_by_same_fault() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, labels, old) = setup(64, 4, 4);
        let buf = GlobalBuffer::from_matrix(&samples);
        let inj = Injector::planned(vec![PlannedInjection {
            block: (0, 0),
            warp: 0,
            k_step: 2,
            elem_idx: 0,
            bit: 62,
            target_checksum: false,
        }]);
        let out = update_centroids(&dev, &buf, 64, 4, &labels, &old, false, &inj, &c).unwrap();
        let (want, _) = update_reference(&samples, &labels, &old);
        assert!(
            out.centroids.max_abs_diff(&want) > 1.0,
            "without DMR the flip silently lands in a centroid"
        );
    }

    #[test]
    fn naive_update_matches_fused_but_wastes_launches() {
        let dev = DeviceProfile::a100();
        let (samples, labels, old) = setup(120, 6, 8);
        let buf = GlobalBuffer::from_matrix(&samples);

        let c_naive = Counters::new();
        let naive = update_centroids_naive(&dev, &buf, 120, 6, &labels, &old, &c_naive).unwrap();
        let c_fused = Counters::new();
        let fused =
            update_centroids(&dev, &buf, 120, 6, &labels, &old, false, &NoFault, &c_fused).unwrap();

        // Functionally identical…
        assert_eq!(naive.counts, fused.counts);
        assert!(naive.centroids.max_abs_diff(&fused.centroids) < 1e-12);
        // …but one launch per centroid (plus averaging) instead of two.
        let sn = c_naive.snapshot();
        let sf = c_fused.snapshot();
        assert_eq!(sn.kernel_launches, 8 + 1);
        assert_eq!(sf.kernel_launches, 2);
        // and K redundant label scans.
        assert!(
            sn.bytes_loaded > sf.bytes_loaded,
            "{} vs {}",
            sn.bytes_loaded,
            sf.bytes_loaded
        );
    }

    #[test]
    fn out_of_range_label_is_detected_not_fatal() {
        // A bit flip in a label can push it far past k; the update must
        // survive (no OOB indexing, debug or release), report the fault,
        // and exclude only the corrupted sample.
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, mut labels, old) = setup(100, 5, 7);
        labels[17] = 7 + (1 << 20); // corrupted label, way out of range
        let buf = GlobalBuffer::from_matrix(&samples);
        let out = update_centroids(&dev, &buf, 100, 5, &labels, &old, false, &NoFault, &c).unwrap();
        assert_eq!(out.oob_labels, 1, "corruption counted as detected");
        // Result equals the reference computed over the surviving samples.
        let mut clean_labels = labels.clone();
        clean_labels[17] = 0;
        let keep: Vec<usize> = (0..100).filter(|&i| i != 17).collect();
        let kept = Matrix::from_fn(keep.len(), 5, |r, cc| samples.get(keep[r], cc));
        let kept_labels: Vec<u32> = keep.iter().map(|&i| clean_labels[i]).collect();
        let (want, want_counts) = update_reference(&kept, &kept_labels, &old);
        assert_eq!(out.counts, want_counts);
        assert!(out.centroids.max_abs_diff(&want) < 1e-9);
        // The naive baseline must account the corruption identically.
        let naive = update_centroids_naive(&dev, &buf, 100, 5, &labels, &old, &c).unwrap();
        assert_eq!(naive.oob_labels, 1);
        assert_eq!(naive.counts, out.counts);
    }

    #[test]
    fn in_range_labels_report_zero_oob() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let (samples, labels, old) = setup(64, 3, 4);
        let buf = GlobalBuffer::from_matrix(&samples);
        let out = update_centroids(&dev, &buf, 64, 3, &labels, &old, false, &NoFault, &c).unwrap();
        assert_eq!(out.oob_labels, 0);
    }

    #[test]
    fn centroid_drift_is_rowwise_euclidean_and_standalone() {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let old = GlobalBuffer::<f64>::from_slice(&[0.0, 0.0, 1.0, 1.0, 5.0, 5.0]);
        let new = GlobalBuffer::<f64>::from_slice(&[3.0, 4.0, 1.0, 1.0, 5.0, 4.0]);
        let out = GlobalBuffer::<f64>::zeros(3);
        let before = c.snapshot();
        let max_drift = centroid_drift(&dev, &old, &new, 3, 2, &out, &c).unwrap();
        assert_eq!(out.to_vec(), vec![5.0, 0.0, 1.0]);
        assert_eq!(max_drift, 5.0);
        // one launch — the fused update keeps its two-launch profile
        assert_eq!(c.snapshot().since(&before).kernel_launches, 1);
        // shape mismatches rejected
        assert!(centroid_drift(&dev, &old, &new, 2, 2, &out, &c).is_err());
    }

    #[test]
    fn dmr_off_has_zero_stats() {
        let dev = DeviceProfile::t4();
        let c = Counters::new();
        let (samples, labels, old) = setup(16, 2, 2);
        let buf = GlobalBuffer::from_matrix(&samples);
        let out = update_centroids(&dev, &buf, 16, 2, &labels, &old, false, &NoFault, &c).unwrap();
        assert_eq!(out.dmr, DmrStats::default());
    }
}
