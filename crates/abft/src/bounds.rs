//! Slack policy for triangle-inequality bound pruning (Hamerly).
//!
//! Bound-pruned assignment keeps per-sample distance bounds in Euclidean
//! (non-squared) space and skips the k-way scan whenever the upper bound
//! proves the assignment cannot change. Two floating-point hazards make a
//! naive implementation unsound against the reference kernel:
//!
//! 1. the scan it replaces accumulates `Σ (x−y)²` in FP, so its argmin can
//!    differ from the exact argmin by the accumulation noise floor, and
//! 2. the bounds themselves are maintained by FP adds/subtracts of centroid
//!    drifts, accumulating their own rounding error over iterations.
//!
//! The policy here makes prune decisions *provably consistent* with the
//! reference scan: every upper bound is inflated by a relative slack and
//! every lower bound deflated by it, where the slack dominates the scan's
//! worst-case accumulation error (a sum of `dim` non-negative terms has
//! relative error ≤ `(dim+1)·ε`; the slack is `4·(dim+16)·ε`). A prune then
//! implies a true relative gap the reference's rounding noise cannot
//! bridge, so the pruned label equals the reference's FP argmin bit for
//! bit. The same slack gives revalidation its false-alarm immunity: a
//! recomputed distance only counts as a bound violation when it disagrees
//! beyond the slack band, which rounding cannot cause — any trip is a real
//! corruption.

use gpu_sim::{Precision, Scalar};
use serde::{Deserialize, Serialize};

/// Relative slack applied to Hamerly bounds: upper bounds are multiplied by
/// `1 + rel_slack`, lower bounds (and centroid-separation radii) by
/// `1 - rel_slack`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundPolicy {
    /// The relative slack; dominates the distance scan's FP noise floor.
    pub rel_slack: f64,
}

impl BoundPolicy {
    /// Policy for a precision and feature dimension: `4·(dim+16)·ε` with ε
    /// the format's machine epsilon. The `+16` keeps a margin even at tiny
    /// dimensions; the factor 4 puts the slack a comfortable factor above
    /// the `(dim+1)·ε` worst-case relative error of the non-negative-term
    /// accumulation it must dominate.
    pub fn for_precision(p: Precision, dim: usize) -> Self {
        let eps = match p {
            Precision::Fp32 => f32::EPSILON as f64,
            Precision::Fp64 => f64::EPSILON,
        };
        BoundPolicy {
            rel_slack: 4.0 * (dim as f64 + 16.0) * eps,
        }
    }

    /// Round `x` up by the slack — safe for upper bounds.
    pub fn inflate<T: Scalar>(&self, x: T) -> T {
        x * T::from_f64(1.0 + self.rel_slack)
    }

    /// Round `x` down by the slack — safe for lower bounds.
    pub fn deflate<T: Scalar>(&self, x: T) -> T {
        x * T::from_f64(1.0 - self.rel_slack)
    }

    /// True when a stored upper bound sits *below* the recomputed exact
    /// distance by more than the slack band — impossible under fault-free
    /// maintenance, so it signals a corrupted bound. Non-finite stored
    /// values other than `+∞` (which is a valid "unbounded" upper bound)
    /// also trip.
    pub fn upper_violates<T: Scalar>(&self, stored: T, exact: T) -> bool {
        if !stored.is_finite_s() {
            return stored != T::INFINITY;
        }
        stored < self.deflate(exact)
    }

    /// True when a stored lower bound sits *above* the recomputed exact
    /// second-closest distance by more than the slack band. NaN trips;
    /// `-∞` (an over-deflated but sound lower bound) does not.
    pub fn lower_violates<T: Scalar>(&self, stored: T, exact_second: T) -> bool {
        if stored.to_f64().is_nan() {
            return true; // NaN is never a sound bound
        }
        if exact_second == T::INFINITY {
            // k = 1: there is no second centroid, any bound is sound
            return false;
        }
        if !stored.is_finite_s() {
            // +∞ claims every other centroid is infinitely far; −∞ is just
            // an over-deflated (useless but sound) bound
            return stored == T::INFINITY;
        }
        stored > self.inflate(exact_second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_scales_with_dim_and_precision() {
        let a = BoundPolicy::for_precision(Precision::Fp64, 8);
        let b = BoundPolicy::for_precision(Precision::Fp64, 256);
        assert!(b.rel_slack > a.rel_slack);
        let c = BoundPolicy::for_precision(Precision::Fp32, 8);
        assert!(c.rel_slack > a.rel_slack, "fp32 noise floor is coarser");
        // slack stays far below anything that would cost pruning power
        assert!(c.rel_slack < 1e-3);
    }

    #[test]
    fn inflate_deflate_bracket_the_value() {
        let p = BoundPolicy::for_precision(Precision::Fp64, 64);
        let x = 3.75f64;
        assert!(p.inflate(x) > x);
        assert!(p.deflate(x) < x);
        assert!(p.inflate(0.0f64) == 0.0 && p.deflate(0.0f64) == 0.0);
        assert_eq!(p.inflate(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn violations_require_more_than_rounding() {
        let p = BoundPolicy::for_precision(Precision::Fp64, 64);
        let d = 10.0f64;
        // within the slack band: no alarm either direction
        assert!(!p.upper_violates(d * (1.0 - p.rel_slack / 8.0), d));
        assert!(!p.lower_violates(d * (1.0 + p.rel_slack / 8.0), d));
        // beyond it: alarm
        assert!(p.upper_violates(d * 0.5, d));
        assert!(p.lower_violates(d * 2.0, d));
        // exact agreement never alarms
        assert!(!p.upper_violates(d, d));
        assert!(!p.lower_violates(d, d));
    }

    #[test]
    fn non_finite_bounds_classified() {
        let p = BoundPolicy::for_precision(Precision::Fp64, 8);
        assert!(!p.upper_violates(f64::INFINITY, 1.0), "+inf upper is valid");
        assert!(p.upper_violates(f64::NAN, 1.0));
        assert!(p.lower_violates(f64::NAN, 1.0));
        assert!(p.lower_violates(f64::INFINITY, 1.0));
        assert!(!p.lower_violates(f64::NEG_INFINITY, 1.0));
        // k = 1 sentinel: no second centroid, nothing finite can violate
        assert!(!p.lower_violates(5.0f64, f64::INFINITY));
    }
}
