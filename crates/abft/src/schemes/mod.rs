//! The competing fault-tolerance schemes evaluated in the paper (Fig. 5).
//!
//! | scheme | level | SIMT | tensor core | detection | correction |
//! |---|---|---|---|---|---|
//! | Wu (ICS'23) | threadblock | ✓ | ✗ | ✓ | ✓ (register reuse — broken by `cp.async`) |
//! | Kosaian (SC'21) | warp | ✓ | ✓ | ✓ | ✗ (recompute) |
//! | **FT K-means** | warp | ✓ | ✓ | ✓ | ✓ (location encoding) |

pub mod ftkmeans;
pub mod kosaian;
pub mod wu;

use gpu_sim::timing::FtMode;
use serde::{Deserialize, Serialize};

/// Identifies a fault-tolerance scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// No protection.
    None,
    /// The paper's warp-level detect-and-correct scheme.
    FtKMeans,
    /// Warp-level detection only (correction via recomputation).
    Kosaian,
    /// Threadblock-level register-reuse scheme.
    Wu,
}

impl SchemeKind {
    /// Map to the timing model's [`FtMode`].
    pub fn ft_mode(self) -> FtMode {
        match self {
            SchemeKind::None => FtMode::None,
            SchemeKind::FtKMeans => FtMode::FtKMeans,
            SchemeKind::Kosaian => FtMode::Kosaian,
            SchemeKind::Wu => FtMode::Wu,
        }
    }

    /// Whether the scheme can correct an error without recomputation.
    pub fn corrects_in_place(self) -> bool {
        matches!(self, SchemeKind::FtKMeans | SchemeKind::Wu)
    }

    /// Display name used in reports (matches the paper's figure legends).
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::None => "no FT",
            SchemeKind::FtKMeans => "FT K-Means",
            SchemeKind::Kosaian => "Kosaian's",
            SchemeKind::Wu => "Wu's",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_to_ft_mode() {
        assert_eq!(SchemeKind::None.ft_mode(), FtMode::None);
        assert_eq!(SchemeKind::FtKMeans.ft_mode(), FtMode::FtKMeans);
        assert_eq!(SchemeKind::Kosaian.ft_mode(), FtMode::Kosaian);
        assert_eq!(SchemeKind::Wu.ft_mode(), FtMode::Wu);
    }

    #[test]
    fn correction_capabilities_match_figure5() {
        assert!(SchemeKind::FtKMeans.corrects_in_place());
        assert!(SchemeKind::Wu.corrects_in_place());
        assert!(!SchemeKind::Kosaian.corrects_in_place());
    }
}
