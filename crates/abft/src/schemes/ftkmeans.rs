//! The paper's scheme: warp-level two-sided online checksums with
//! location-encoded correction, computed from register fragments so it
//! coexists with `cp.async` (Fig. 6).

use crate::online::{OnlineMode, WarpOnlineState};
use crate::threshold::ThresholdPolicy;
use gpu_sim::{Precision, Scalar};

/// Factory for per-warp FT K-means states.
#[derive(Debug, Clone, Copy)]
pub struct FtKMeansScheme {
    policy: ThresholdPolicy,
}

impl FtKMeansScheme {
    /// Scheme with the default threshold for `precision`.
    pub fn new(precision: Precision) -> Self {
        FtKMeansScheme {
            policy: ThresholdPolicy::for_precision(precision),
        }
    }

    /// Scheme with an explicit threshold policy.
    pub fn with_policy(policy: ThresholdPolicy) -> Self {
        FtKMeansScheme { policy }
    }

    /// The threshold policy in use.
    pub fn policy(&self) -> ThresholdPolicy {
        self.policy
    }

    /// Create the online state for one warp's `wm x wn` accumulator tile.
    pub fn warp_state<T: Scalar>(&self, wm: usize, wn: usize) -> WarpOnlineState<T> {
        WarpOnlineState::new(wm, wn, self.policy, OnlineMode::DetectCorrect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineMode;

    #[test]
    fn builds_detect_correct_states() {
        let s = FtKMeansScheme::new(Precision::Fp32);
        let st = s.warp_state::<f32>(16, 8);
        assert_eq!(st.mode(), OnlineMode::DetectCorrect);
    }

    #[test]
    fn custom_policy_is_respected() {
        let p = ThresholdPolicy {
            rel: 0.5,
            abs_floor: 1.0,
        };
        let s = FtKMeansScheme::with_policy(p);
        assert_eq!(s.policy(), p);
    }
}
