//! Kosaian & Rashmi's arithmetic-intensity-guided scheme (SC'21): warp-level
//! single-checksum **detection**; correction requires a time-redundant
//! recomputation of the affected interval (paper §II-C: "capable of error
//! detection, but not correction").

use crate::online::{OnlineMode, WarpOnlineState};
use crate::threshold::ThresholdPolicy;
use gpu_sim::{Precision, Scalar};

/// Factory for per-warp detection-only states.
#[derive(Debug, Clone, Copy)]
pub struct KosaianScheme {
    policy: ThresholdPolicy,
}

impl KosaianScheme {
    /// Scheme with the default threshold for `precision`.
    pub fn new(precision: Precision) -> Self {
        KosaianScheme {
            policy: ThresholdPolicy::for_precision(precision),
        }
    }

    /// Create the online state for one warp's `wm x wn` tile.
    pub fn warp_state<T: Scalar>(&self, wm: usize, wn: usize) -> WarpOnlineState<T> {
        WarpOnlineState::new(wm, wn, self.policy, OnlineMode::DetectOnly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_detect_only_states() {
        let s = KosaianScheme::new(Precision::Fp64);
        let st = s.warp_state::<f64>(8, 8);
        assert_eq!(st.mode(), OnlineMode::DetectOnly);
    }
}
