//! Wu et al.'s fully-fused ABFT-GEMM (ICS'23): **threadblock-level**
//! checksums whose input encodings piggyback on the global→register→shared
//! staging path ("register reusing", paper Fig. 1 / §II-C).
//!
//! On pre-Ampere devices the staging observation is free. On Ampere,
//! `cp.async` bypasses the register file, so the only way to obtain the
//! input sums is to **re-read the operand tiles** — the kernel charges
//! those loads to `Counters::ft_extra_loads` and the timing model bills the
//! corresponding DRAM traffic and the threadblock-wide reduction
//! synchronization.

use crate::checksum::ChecksumTriple;
use crate::correct::correct_in_place;
use crate::detect::compare;
use crate::locate::{locate, Located};
use crate::online::CheckOutcome;
use crate::threshold::ThresholdPolicy;
use gpu_sim::counters::EventSink;
use gpu_sim::shared::SharedTile;
use gpu_sim::{Precision, Scalar};

/// Threadblock-level online ABFT state for Wu's scheme.
#[derive(Debug, Clone)]
pub struct WuBlockState<T> {
    reference: ChecksumTriple<T>,
    tb_m: usize,
    tb_n: usize,
    policy: ThresholdPolicy,
}

impl<T: Scalar> WuBlockState<T> {
    /// Fresh state for a `tb_m x tb_n` threadblock output tile.
    pub fn new(tb_m: usize, tb_n: usize, precision: Precision) -> Self {
        WuBlockState {
            reference: ChecksumTriple::zero(),
            tb_m,
            tb_n,
            policy: ThresholdPolicy::for_precision(precision),
        }
    }

    /// Current reference (test introspection).
    pub fn reference(&self) -> &ChecksumTriple<T> {
        &self.reference
    }

    /// Absorb one staged K-slab's operand tiles into the block-level
    /// checksums. The caller decides how the tile data was obtained:
    /// observed during a register-staged copy (free on Turing) or re-read
    /// from global memory (Ampere — charge
    /// [`gpu_sim::Counters::add_ft_extra_loads`] before calling).
    ///
    /// This is a threadblock-wide reduction: all warps must synchronize
    /// before the sums are complete, which is the synchronization cost the
    /// paper eliminates (§V-D: "60% improvement due to the elimination of
    /// threadblock-level synchronization").
    pub fn absorb_tiles<C: EventSink + ?Sized>(
        &mut self,
        a_tile: &SharedTile<T>,
        b_tile: &SharedTile<T>,
        kk: usize,
        counters: &C,
    ) {
        debug_assert!(kk <= a_tile.cols());
        for k in 0..kk {
            let mut a1 = T::ZERO;
            let mut a2 = T::ZERO;
            for r in 0..self.tb_m.min(a_tile.rows()) {
                let v = a_tile.get(r, k);
                a1 += v;
                a2 += T::from_usize(r + 1) * v;
            }
            let mut b1 = T::ZERO;
            let mut b2 = T::ZERO;
            for r in 0..self.tb_n.min(b_tile.rows()) {
                let v = b_tile.get(r, k);
                b1 += v;
                b2 += T::from_usize(r + 1) * v;
            }
            self.reference.accumulate_rank1(a1, a2, b1, b2);
        }
        counters.add_ft_cuda((2 * (self.tb_m + self.tb_n) * kk + 6 * kk) as u64);
        counters.add_barrier(); // block-wide reduction sync
    }

    /// Verify the block tile (accessed through `get`) and correct a located
    /// error through `set`. Uses the same decision tree as the warp-level
    /// scheme (see [`crate::online::WarpOnlineState::check`]): non-finite or
    /// unlocatable payload errors request recomputation; checksum-side hits
    /// re-baseline.
    pub fn check_and_correct<C: EventSink + ?Sized>(
        &mut self,
        get: impl Fn(usize, usize) -> T,
        set: impl FnMut(usize, usize, T),
        counters: &C,
    ) -> CheckOutcome {
        let mut set = set;
        let mut tile = vec![T::ZERO; self.tb_m * self.tb_n];
        for r in 0..self.tb_m {
            for c in 0..self.tb_n {
                tile[r * self.tb_n + c] = get(r, c);
            }
        }
        counters.add_ft_cuda((3 * self.tb_m * self.tb_n) as u64);
        counters.add_barrier();
        if tile.iter().any(|v| !v.is_finite_s()) {
            return CheckOutcome::RecomputeRequired { since_k: 0 };
        }
        let observed = ChecksumTriple::from_tile(&tile, self.tb_m, self.tb_n);
        let Some(disc) = compare(&observed, &self.reference, &self.policy) else {
            return CheckOutcome::Clean;
        };
        if !self.policy.is_error(disc.d, disc.scale) {
            // Weighted-only mismatch: a checksum accumulator was struck.
            self.reference = observed;
            return CheckOutcome::Rebaselined;
        }
        match locate(&disc, self.tb_m, self.tb_n) {
            Located::At { row, col } => {
                let fixed = correct_in_place(&mut tile, self.tb_n, row, col, disc.d);
                set(row, col, fixed);
                let after = ChecksumTriple::from_tile(&tile, self.tb_m, self.tb_n);
                if compare(&after, &self.reference, &self.policy).is_none() {
                    CheckOutcome::Corrected {
                        row,
                        col,
                        magnitude: disc.d,
                    }
                } else {
                    CheckOutcome::RecomputeRequired { since_k: 0 }
                }
            }
            Located::Ambiguous => {
                let weighted_clean = !self.policy.is_error(disc.d21, disc.scale * 2.0)
                    && !self.policy.is_error(disc.d12, disc.scale * 2.0);
                if weighted_clean {
                    self.reference = observed;
                    CheckOutcome::Rebaselined
                } else {
                    CheckOutcome::RecomputeRequired { since_k: 0 }
                }
            }
        }
    }

    /// Reset the reference checksums from the current block tile (after an
    /// external recomputation).
    pub fn rebaseline_from<C: EventSink + ?Sized>(
        &mut self,
        get: impl Fn(usize, usize) -> T,
        counters: &C,
    ) {
        let mut tile = vec![T::ZERO; self.tb_m * self.tb_n];
        for r in 0..self.tb_m {
            for c in 0..self.tb_n {
                tile[r * self.tb_n + c] = get(r, c);
            }
        }
        counters.add_ft_cuda((3 * self.tb_m * self.tb_n) as u64);
        self.reference = ChecksumTriple::from_tile(&tile, self.tb_m, self.tb_n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::counters::Counters;
    use gpu_sim::matrix::gemm_abt_reference;
    use gpu_sim::Matrix;

    const TBM: usize = 6;
    const TBN: usize = 4;
    const KK: usize = 5;

    fn setup() -> (WuBlockState<f64>, Vec<f64>, Counters) {
        let counters = Counters::new();
        let a = Matrix::<f64>::from_fn(TBM, KK, |r, c| 0.3 * r as f64 - 0.2 * c as f64 + 0.1);
        let b = Matrix::<f64>::from_fn(TBN, KK, |r, c| 0.15 * (r + c) as f64 - 0.4);
        let c = gemm_abt_reference(&a, &b);

        let mut a_tile = SharedTile::<f64>::new(TBM, KK);
        let mut b_tile = SharedTile::<f64>::new(TBN, KK);
        for r in 0..TBM {
            for k in 0..KK {
                a_tile.set(r, k, a.get(r, k));
            }
        }
        for r in 0..TBN {
            for k in 0..KK {
                b_tile.set(r, k, b.get(r, k));
            }
        }
        let mut st = WuBlockState::<f64>::new(TBM, TBN, Precision::Fp64);
        st.absorb_tiles(&a_tile, &b_tile, KK, &counters);
        (st, c.into_vec(), counters)
    }

    #[test]
    fn clean_block_passes() {
        let (mut st, tile, counters) = setup();
        let out = st.check_and_correct(
            |r, c| tile[r * TBN + c],
            |_, _, _| panic!("no correction expected"),
            &counters,
        );
        assert_eq!(out, CheckOutcome::Clean);
    }

    #[test]
    fn block_level_error_corrected() {
        let (mut st, mut tile, counters) = setup();
        let clean = tile.clone();
        tile[3 * TBN + 2] += 11.0;
        let mut fixed_at = None;
        let out = st.check_and_correct(
            |r, c| tile[r * TBN + c],
            |r, c, v| fixed_at = Some((r, c, v)),
            &counters,
        );
        match out {
            CheckOutcome::Corrected {
                row,
                col,
                magnitude,
            } => {
                assert_eq!((row, col), (3, 2));
                assert!((magnitude - 11.0).abs() < 1e-9);
            }
            other => panic!("expected correction, got {other:?}"),
        }
        let (r, c, v) = fixed_at.unwrap();
        assert!((v - clean[r * TBN + c]).abs() < 1e-9);
    }

    #[test]
    fn absorb_counts_block_sync() {
        let (_, _, counters) = setup();
        assert!(
            counters.snapshot().barriers >= 1,
            "block reduction must sync"
        );
        assert!(counters.snapshot().ft_cuda_ops > 0);
    }
}
