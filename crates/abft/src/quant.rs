//! Error-bound policy for quantized-table predict (the serving-path
//! analogue of [`crate::bounds::BoundPolicy`]).
//!
//! The fused quantized predict kernel scores every sample against a
//! *dequantized* centroid table, so its computed squared distances `d̂_j`
//! differ from the exact-table distances `d_j` two ways:
//!
//! 1. **Quantization displacement.** The dequantized centroid `ĉ_j` sits at
//!    Euclidean distance `e_j = ‖c_j − ĉ_j‖` from the true centroid —
//!    computed *exactly* at table-build time, not estimated. By the
//!    triangle inequality `|‖x−c_j‖ − ‖x−ĉ_j‖| ≤ e_j`, so in squared space
//!    `d_j ≥ (√d̂_j − e_j)²` and `d_a ≤ (√d̂_a + e_a)²`.
//! 2. **FP accumulation noise.** Both the quantized scan (norm-identity
//!    form `‖x‖² + ‖ĉ‖² − 2x·ĉ`, subject to cancellation at the magnitude
//!    scale `‖x‖² + ‖ĉ‖²`) and the reference scan it must agree with
//!    (direct `Σ(x−y)²`) carry a relative noise floor of order `dim·ε`.
//!
//! [`QuantMargin::accepts`] admits a quantized argmin only when the gap to
//! the runner-up dominates *both* sources: using `√s − √b > e` ⟺
//! `s − b > e·(√s + √b)`, the quantization term charges the winner's own
//! displacement plus the table-wide maximum (any non-runner-up centroid
//! could carry the maximum), and the FP term charges the same `4·(dim+16)·ε`
//! slack [`crate::bounds::BoundPolicy`] uses, scaled by the magnitude at
//! which the norm-identity cancellation occurs. A rejected sample falls
//! back to the exact fp row scan, so predict stays label-exact while the
//! common case runs quantized.

use gpu_sim::Precision;
use serde::{Deserialize, Serialize};

/// Acceptance bound for a quantized argmin: the margin between best and
/// runner-up quantized distances must clear the quantization-induced
/// distance slack plus the FP accumulation noise floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantMargin {
    /// Largest per-centroid quantization displacement `max_j ‖c_j − ĉ_j‖`
    /// (exact, computed at table build).
    pub err_norm_max: f64,
    /// Relative FP noise slack of the accumulation format — `4·(dim+16)·ε`,
    /// the same floor [`crate::bounds::BoundPolicy`] dominates.
    pub rel_slack: f64,
}

impl QuantMargin {
    /// Policy for a table with worst-case displacement `err_norm_max`,
    /// accumulating in precision `accum` over `dim` features.
    pub fn new(err_norm_max: f64, accum: Precision, dim: usize) -> Self {
        let eps = match accum {
            Precision::Fp32 => f32::EPSILON as f64,
            Precision::Fp64 => f64::EPSILON,
        };
        QuantMargin {
            err_norm_max,
            rel_slack: 4.0 * (dim as f64 + 16.0) * eps,
        }
    }

    /// The slack (in squared-distance units) the best/runner-up gap must
    /// exceed for the quantized argmin to be provably the exact-table
    /// argmin *and* beyond the reference scan's rounding noise. `err_best`
    /// is the winner's own displacement `e_a`; `mag_sq` the cancellation
    /// magnitude `‖x‖² + max_j ‖ĉ_j‖²` of the norm-identity evaluation.
    pub fn slack_sq(&self, best_sq: f64, second_sq: f64, err_best: f64, mag_sq: f64) -> f64 {
        let b = best_sq.max(0.0);
        let s = second_sq.max(0.0);
        let e = err_best + self.err_norm_max;
        e * (b.sqrt() + s.sqrt()) + e * e + 4.0 * self.rel_slack * mag_sq.max(0.0)
    }

    /// True when the quantized argmin is safe to accept: the runner-up gap
    /// exceeds [`QuantMargin::slack_sq`]. Non-finite inputs (NaN distances,
    /// the `+∞` runner-up sentinel of `k = 1`) always reject — the caller's
    /// exact fallback row handles them with reference semantics.
    pub fn accepts(&self, best_sq: f64, second_sq: f64, err_best: f64, mag_sq: f64) -> bool {
        if !(best_sq.is_finite() && second_sq.is_finite() && mag_sq.is_finite()) {
            return false;
        }
        second_sq - best_sq > self.slack_sq(best_sq, second_sq, err_best, mag_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_table_still_needs_fp_margin() {
        // err 0: the policy degenerates to an FP-noise margin check.
        let p = QuantMargin::new(0.0, Precision::Fp32, 64);
        assert!(p.accepts(1.0, 2.0, 0.0, 3.0), "wide gap accepted");
        assert!(!p.accepts(1.0, 1.0, 0.0, 3.0), "tie always rejected");
        // a gap inside the FP noise band is rejected
        let tiny_gap = 1.0 + p.rel_slack * 3.0 * 0.5;
        assert!(!p.accepts(1.0, tiny_gap, 0.0, 3.0));
    }

    #[test]
    fn quantization_error_widens_the_required_margin() {
        let tight = QuantMargin::new(1e-6, Precision::Fp32, 64);
        let loose = QuantMargin::new(0.5, Precision::Fp32, 64);
        assert!(tight.slack_sq(1.0, 4.0, 1e-6, 5.0) < loose.slack_sq(1.0, 4.0, 0.5, 5.0));
        // gap 3 in sqrt space is 2−1=1; a displacement sum of ~1 must reject
        assert!(tight.accepts(1.0, 4.0, 1e-6, 5.0));
        assert!(!loose.accepts(1.0, 4.0, 0.5, 5.0));
    }

    #[test]
    fn winner_displacement_is_charged_separately() {
        let p = QuantMargin::new(0.01, Precision::Fp32, 8);
        // same table-wide max, bigger winner displacement → bigger slack
        assert!(p.slack_sq(1.0, 4.0, 0.2, 5.0) > p.slack_sq(1.0, 4.0, 0.0, 5.0));
    }

    #[test]
    fn non_finite_inputs_always_reject() {
        let p = QuantMargin::new(0.0, Precision::Fp64, 8);
        assert!(!p.accepts(f64::NAN, 2.0, 0.0, 1.0));
        assert!(!p.accepts(1.0, f64::INFINITY, 0.0, 1.0), "k = 1 sentinel");
        assert!(!p.accepts(1.0, 2.0, 0.0, f64::NAN));
    }

    #[test]
    fn sqrt_space_identity_holds() {
        // accepts ⟹ √s − √b > e_a + e_max (the triangle-inequality form).
        let p = QuantMargin::new(0.3, Precision::Fp64, 4);
        for (b, s, ea) in [(0.5, 9.0, 0.1), (0.0, 4.0, 0.3), (2.0, 2.4, 0.0)] {
            if p.accepts(b, s, ea, b + s) {
                assert!(f64::sqrt(s) - f64::sqrt(b) > ea + p.err_norm_max);
            }
        }
    }
}
