//! Location encoding: recover the coordinates of a corrupted accumulator
//! element from weighted checksum discrepancies.
//!
//! For a single error of magnitude `d` at `(r, c)` (0-based), the weighted
//! discrepancies satisfy `d21 = (r+1)·d` and `d12 = (c+1)·d`, so the ratios
//! recover the 1-based coordinates exactly (paper §IV-A: "our method
//! employs a vector e2 = [1, 2, …, N] to checksum the inputs again").
//! Floating-point noise and multi-error scenarios make the ratios
//! non-integral or out of range, which the decoder reports as
//! [`Located::Ambiguous`] — callers then fall back to recomputation or
//! checksum re-baselining.

use crate::detect::Discrepancy;

/// Result of location decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Located {
    /// A single error at this 0-based position of the tile.
    At { row: usize, col: usize },
    /// The discrepancies are inconsistent with one payload error (the fault
    /// hit a checksum accumulator, or more than one error occurred).
    Ambiguous,
}

/// Tolerance for "is this ratio an integer": the decoded weight may wobble
/// by rounding; anything further than this from an integer is rejected.
const INTEGRALITY_TOL: f64 = 0.25;

/// Decode the error position within a `rows x cols` tile.
pub fn locate(disc: &Discrepancy, rows: usize, cols: usize) -> Located {
    if disc.d == 0.0 || !disc.d.is_finite() {
        return Located::Ambiguous;
    }
    let row_w = disc.d21 / disc.d;
    let col_w = disc.d12 / disc.d;
    let row = row_w.round();
    let col = col_w.round();
    if !row.is_finite()
        || !col.is_finite()
        || (row_w - row).abs() > INTEGRALITY_TOL
        || (col_w - col).abs() > INTEGRALITY_TOL
    {
        return Located::Ambiguous;
    }
    if row < 1.0 || col < 1.0 || row > rows as f64 || col > cols as f64 {
        return Located::Ambiguous;
    }
    Located::At {
        row: row as usize - 1,
        col: col as usize - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disc(d: f64, d21: f64, d12: f64) -> Discrepancy {
        Discrepancy {
            d,
            d21,
            d12,
            scale: 1.0,
        }
    }

    #[test]
    fn exact_single_error_is_located() {
        // error 3.0 at (row 2, col 0) 0-based -> weights 3 and 1
        let l = locate(&disc(3.0, 9.0, 3.0), 4, 4);
        assert_eq!(l, Located::At { row: 2, col: 0 });
    }

    #[test]
    fn all_positions_roundtrip() {
        let (rows, cols) = (8, 6);
        for r in 0..rows {
            for c in 0..cols {
                let d = -2.75;
                let l = locate(&disc(d, (r + 1) as f64 * d, (c + 1) as f64 * d), rows, cols);
                assert_eq!(l, Located::At { row: r, col: c }, "({r},{c})");
            }
        }
    }

    #[test]
    fn noisy_ratio_within_tolerance_still_locates() {
        let l = locate(&disc(2.0, 6.1, 2.05), 4, 4);
        assert_eq!(l, Located::At { row: 2, col: 0 });
    }

    #[test]
    fn out_of_range_is_ambiguous() {
        // decoded row weight 9 on a 4-row tile
        assert_eq!(locate(&disc(1.0, 9.0, 1.0), 4, 4), Located::Ambiguous);
        // decoded weight below 1 (checksum-side corruption)
        assert_eq!(locate(&disc(4.0, 0.5, 4.0), 4, 4), Located::Ambiguous);
    }

    #[test]
    fn non_integral_ratio_is_ambiguous() {
        assert_eq!(locate(&disc(2.0, 5.0, 2.0), 4, 4), Located::Ambiguous);
    }

    #[test]
    fn zero_or_nonfinite_magnitude_is_ambiguous() {
        assert_eq!(locate(&disc(0.0, 3.0, 3.0), 4, 4), Located::Ambiguous);
        assert_eq!(locate(&disc(f64::NAN, 3.0, 3.0), 4, 4), Located::Ambiguous);
        assert_eq!(
            locate(&disc(f64::INFINITY, 3.0, 3.0), 4, 4),
            Located::Ambiguous
        );
    }
}
