//! In-place correction: subtract the located error magnitude.

use gpu_sim::Scalar;

/// Subtract error magnitude `d` from `acc[row][col]` of a row-major tile
/// with `cols` columns. Returns the corrected value.
pub fn correct_in_place<T: Scalar>(
    acc: &mut [T],
    cols: usize,
    row: usize,
    col: usize,
    d: f64,
) -> T {
    let idx = row * cols + col;
    let fixed = acc[idx] - T::from_f64(d);
    acc[idx] = fixed;
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::ChecksumTriple;
    use crate::detect::compare;
    use crate::locate::{locate, Located};
    use crate::threshold::ThresholdPolicy;
    use gpu_sim::Precision;

    #[test]
    fn correction_restores_value() {
        let mut acc = vec![1.0f64, 2.0, 3.0, 4.0];
        let v = correct_in_place(&mut acc, 2, 1, 0, 0.5);
        assert_eq!(v, 2.5);
        assert_eq!(acc, vec![1.0, 2.0, 2.5, 4.0]);
    }

    #[test]
    fn full_detect_locate_correct_cycle() {
        // Reference tile and checksums.
        let clean = [1.5f64, -2.0, 0.25, 4.0, 1.0, -3.5];
        let (rows, cols) = (2, 3);
        let reference = ChecksumTriple::from_tile(&clean, rows, cols);

        // Corrupt one element.
        let mut acc = clean;
        acc[4] += 7.25; // (row 1, col 1)

        let observed = ChecksumTriple::from_tile(&acc, rows, cols);
        let policy = ThresholdPolicy::for_precision(Precision::Fp64);
        let disc = compare(&observed, &reference, &policy).expect("detected");
        let Located::At { row, col } = locate(&disc, rows, cols) else {
            panic!("must locate a single error");
        };
        assert_eq!((row, col), (1, 1));
        correct_in_place(&mut acc, cols, row, col, disc.d);
        for (a, b) in acc.iter().zip(clean.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn correction_is_idempotent_on_zero_magnitude() {
        let mut acc = vec![1.0f32, 2.0];
        correct_in_place(&mut acc, 2, 0, 1, 0.0);
        assert_eq!(acc, vec![1.0, 2.0]);
    }
}
