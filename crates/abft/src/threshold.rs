//! Detection threshold δ.
//!
//! Checksum equality is algebraic but floating-point accumulation orders
//! differ between the payload path (per-element MMA accumulation) and the
//! checksum path (products of sums), so a tolerance is required (paper
//! §II-A: "a checksum test with a defined threshold δ"). The policy scales
//! with the checksum magnitude and the format's effective epsilon — TF32
//! truncation makes the FP32 noise floor far coarser than IEEE binary32.

use gpu_sim::Precision;
use serde::{Deserialize, Serialize};

/// Threshold policy: `δ = max(abs_floor, rel · scale)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdPolicy {
    /// Relative component, multiplied by the checksum magnitude scale.
    pub rel: f64,
    /// Absolute floor, guards tiny-magnitude tiles.
    pub abs_floor: f64,
}

impl ThresholdPolicy {
    /// Default policy for a precision.
    ///
    /// FP32 kernels accumulate TF32-truncated products (10-bit mantissa,
    /// ε ≈ 2⁻¹⁰), so rounding noise between the two accumulation orders can
    /// reach a few times `ε·√n·scale`; `rel = 2⁻⁶` keeps false alarms out
    /// while still catching any flip that matters at single precision.
    /// FP64 tensor MMA is true IEEE double; `rel = 2⁻³⁰` is far above the
    /// rounding floor yet catches everything above ~1 ulp of the scale.
    pub fn for_precision(p: Precision) -> Self {
        match p {
            Precision::Fp32 => ThresholdPolicy {
                rel: 1.0 / 64.0,
                abs_floor: 1e-4,
            },
            Precision::Fp64 => ThresholdPolicy {
                rel: 2f64.powi(-30),
                abs_floor: 1e-9,
            },
        }
    }

    /// A loose policy for stress tests (misses more, never false-alarms).
    pub fn loose(p: Precision) -> Self {
        let d = Self::for_precision(p);
        ThresholdPolicy {
            rel: d.rel * 16.0,
            abs_floor: d.abs_floor * 16.0,
        }
    }

    /// The detection threshold for a tile whose checksum magnitude scale is
    /// `scale`.
    pub fn delta(&self, scale: f64) -> f64 {
        (self.rel * scale).max(self.abs_floor)
    }

    /// True when `disc` (an observed checksum discrepancy) signals an error
    /// for a tile of magnitude `scale`. Non-finite discrepancies (an Inf or
    /// NaN produced by an exponent-field bit flip) always signal an error —
    /// `NaN > δ` would otherwise silently evaluate to `false`.
    pub fn is_error(&self, disc: f64, scale: f64) -> bool {
        !disc.is_finite() || disc.abs() > self.delta(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_scales_with_magnitude() {
        let p = ThresholdPolicy::for_precision(Precision::Fp64);
        assert!(p.delta(1e6) > p.delta(1.0));
        assert_eq!(p.delta(0.0), p.abs_floor);
    }

    #[test]
    fn fp32_threshold_coarser_than_fp64() {
        let p32 = ThresholdPolicy::for_precision(Precision::Fp32);
        let p64 = ThresholdPolicy::for_precision(Precision::Fp64);
        assert!(p32.rel > p64.rel);
    }

    #[test]
    fn is_error_decision() {
        let p = ThresholdPolicy::for_precision(Precision::Fp64);
        let scale = 100.0;
        assert!(p.is_error(1.0, scale));
        assert!(!p.is_error(1e-9, scale));
        assert!(p.is_error(-1.0, scale), "sign must not matter");
    }

    #[test]
    fn non_finite_discrepancies_always_flagged() {
        let p = ThresholdPolicy::for_precision(Precision::Fp64);
        assert!(p.is_error(f64::NAN, 1e6));
        assert!(p.is_error(f64::INFINITY, 1e6));
        assert!(p.is_error(f64::NEG_INFINITY, 1e6));
    }

    #[test]
    fn loose_is_looser() {
        let a = ThresholdPolicy::for_precision(Precision::Fp32);
        let b = ThresholdPolicy::loose(Precision::Fp32);
        assert!(b.delta(10.0) > a.delta(10.0));
    }
}
