//! Dual modular redundancy (DMR) for memory-bound phases.
//!
//! The paper protects the centroid-update phase (Fig. 1 step 3) by
//! duplicating all arithmetic and comparing — the memory latency of loading
//! the data points is high enough that the duplicated instructions add
//! under 1% (§I). The combinator here executes an operation twice,
//! compares, and retries on mismatch (a mismatch proves a transient fault
//! hit one of the two executions).

use gpu_sim::Scalar;

/// Statistics from a DMR-protected region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmrStats {
    /// Number of protected evaluations.
    pub executions: u64,
    /// Mismatches caught (each implies one transient fault absorbed).
    pub mismatches: u64,
    /// Evaluations that exhausted retries (persistent disagreement).
    pub unresolved: u64,
}

impl DmrStats {
    /// Merge two stat blocks.
    pub fn merge(&mut self, other: &DmrStats) {
        self.executions += other.executions;
        self.mismatches += other.mismatches;
        self.unresolved += other.unresolved;
    }

    /// Emit the mismatch movement since `prev` as a trace fault event
    /// (nothing when tracing is off or the delta is zero). Called
    /// host-side by the driving loop, once per protected phase.
    pub fn emit_trace_delta(&self, prev: &DmrStats) {
        if !trace::active() {
            return;
        }
        trace::fault(
            trace::faults::DMR_MISMATCH,
            self.mismatches.saturating_sub(prev.mismatches),
        );
    }
}

/// Execute `op` twice and compare; on mismatch retry up to `max_retries`
/// times, taking the majority (first value that repeats). Returns the
/// trusted value.
///
/// `op` receives the replica index (0, 1, 2, …) so fault injectors can
/// target a specific replica.
pub fn protected<T: Scalar>(
    mut op: impl FnMut(u32) -> T,
    max_retries: u32,
    stats: &mut DmrStats,
) -> T {
    stats.executions += 1;
    let first = op(0);
    let second = op(1);
    if first.to_bits() == second.to_bits() {
        return first;
    }
    stats.mismatches += 1;
    // Disagreement: re-execute until some value repeats (SEU ⇒ the third
    // execution matches one of the first two).
    let mut seen = [first, second];
    for retry in 0..max_retries {
        let v = op(2 + retry);
        if seen.iter().any(|s| s.to_bits() == v.to_bits()) {
            return v;
        }
        seen[0] = seen[1];
        seen[1] = v;
    }
    stats.unresolved += 1;
    second
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreeing_replicas_pass_through() {
        let mut stats = DmrStats::default();
        let v = protected(|_| 2.5f64, 3, &mut stats);
        assert_eq!(v, 2.5);
        assert_eq!(stats.mismatches, 0);
        assert_eq!(stats.executions, 1);
    }

    #[test]
    fn single_fault_is_outvoted() {
        let mut stats = DmrStats::default();
        // Replica 0 is corrupted; replicas 1 and 2 agree.
        let v = protected(
            |replica| if replica == 0 { 99.0f64 } else { 7.0 },
            3,
            &mut stats,
        );
        assert_eq!(v, 7.0);
        assert_eq!(stats.mismatches, 1);
        assert_eq!(stats.unresolved, 0);
    }

    #[test]
    fn fault_in_second_replica_is_outvoted() {
        let mut stats = DmrStats::default();
        let v = protected(
            |replica| if replica == 1 { -1.0f32 } else { 3.5 },
            3,
            &mut stats,
        );
        assert_eq!(v, 3.5);
        assert_eq!(stats.mismatches, 1);
    }

    #[test]
    fn persistent_disagreement_is_reported() {
        let mut stats = DmrStats::default();
        let mut x = 0.0f64;
        let _ = protected(
            |_| {
                x += 1.0;
                x
            },
            2,
            &mut stats,
        );
        assert_eq!(stats.unresolved, 1);
    }

    #[test]
    fn stats_merge() {
        let mut a = DmrStats {
            executions: 2,
            mismatches: 1,
            unresolved: 0,
        };
        let b = DmrStats {
            executions: 3,
            mismatches: 0,
            unresolved: 1,
        };
        a.merge(&b);
        assert_eq!(
            a,
            DmrStats {
                executions: 5,
                mismatches: 1,
                unresolved: 1
            }
        );
    }
}
