//! Checksum encodings.
//!
//! The double-checksum construction (paper Eq. 3–6, §IV-A) uses two weight
//! vectors: `e1 = [1, 1, …, 1]` for magnitude and `e2 = [1, 2, …, n]` for
//! location. For an accumulator tile `C` the three protected quantities are
//!
//! * `s11 = e1ᵀ C e1` — the plain sum,
//! * `s21 = e2ᵀ C e1` — row-weighted sum (locates the corrupted row),
//! * `s12 = e1ᵀ C e2` — column-weighted sum (locates the corrupted column).
//!
//! The same triple is maintained *online* from the input fragments: for each
//! K-column, `(Σ_i a_i)·(Σ_j b_j)` contributes to `s11`, etc. Because GEMM
//! is bilinear these telescopes agree with the sums over `C` exactly (up to
//! floating-point rounding, handled by [`crate::threshold`]).

use gpu_sim::{Matrix, Scalar};
use serde::{Deserialize, Serialize};

/// The three checksum scalars protecting one accumulator tile.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChecksumTriple<T> {
    /// `e1ᵀ C e1` — unweighted sum.
    pub s11: T,
    /// `e2ᵀ C e1` — row-weighted sum (weights 1..=rows).
    pub s21: T,
    /// `e1ᵀ C e2` — column-weighted sum (weights 1..=cols).
    pub s12: T,
}

impl<T: Scalar> ChecksumTriple<T> {
    /// Zero triple.
    pub fn zero() -> Self {
        ChecksumTriple {
            s11: T::ZERO,
            s21: T::ZERO,
            s12: T::ZERO,
        }
    }

    /// Compute the triple directly from a row-major `rows x cols` tile.
    pub fn from_tile(acc: &[T], rows: usize, cols: usize) -> Self {
        debug_assert_eq!(acc.len(), rows * cols);
        let mut t = Self::zero();
        for i in 0..rows {
            let wr = T::from_usize(i + 1);
            for j in 0..cols {
                let v = acc[i * cols + j];
                t.s11 += v;
                t.s21 += wr * v;
                t.s12 += T::from_usize(j + 1) * v;
            }
        }
        t
    }

    /// Accumulate one K-column's contribution from input sums:
    /// `a1 = Σ_i a_i`, `a2 = Σ_i (i+1)·a_i`, `b1 = Σ_j b_j`,
    /// `b2 = Σ_j (j+1)·b_j`.
    pub fn accumulate_rank1(&mut self, a1: T, a2: T, b1: T, b2: T) {
        self.s11 += a1 * b1;
        self.s21 += a2 * b1;
        self.s12 += a1 * b2;
    }

    /// Elementwise difference `self - other`.
    pub fn diff(&self, other: &ChecksumTriple<T>) -> ChecksumTriple<T> {
        ChecksumTriple {
            s11: self.s11 - other.s11,
            s21: self.s21 - other.s21,
            s12: self.s12 - other.s12,
        }
    }

    /// Magnitude scale used by the threshold policy.
    pub fn scale(&self) -> f64 {
        self.s11
            .to_f64()
            .abs()
            .max(self.s21.to_f64().abs())
            .max(self.s12.to_f64().abs())
    }
}

/// `e1ᵀ X` — column sums of a matrix (checksum row, Eq. 3).
pub fn encode_col_sums<T: Scalar>(x: &Matrix<T>) -> Vec<T> {
    let mut out = vec![T::ZERO; x.cols()];
    for r in 0..x.rows() {
        for (c, slot) in out.iter_mut().enumerate() {
            *slot += x.get(r, c);
        }
    }
    out
}

/// `e2ᵀ X` — row-index weighted column sums (weights 1..=rows).
pub fn encode_weighted_col_sums<T: Scalar>(x: &Matrix<T>) -> Vec<T> {
    let mut out = vec![T::ZERO; x.cols()];
    for r in 0..x.rows() {
        let w = T::from_usize(r + 1);
        for (c, slot) in out.iter_mut().enumerate() {
            *slot += w * x.get(r, c);
        }
    }
    out
}

/// `Y e1` — row sums of a matrix (checksum column, Eq. 4).
pub fn encode_row_sums<T: Scalar>(y: &Matrix<T>) -> Vec<T> {
    (0..y.rows())
        .map(|r| y.row(r).iter().copied().sum())
        .collect()
}

/// `Y e2` — column-index weighted row sums (weights 1..=cols).
pub fn encode_weighted_row_sums<T: Scalar>(y: &Matrix<T>) -> Vec<T> {
    (0..y.rows())
        .map(|r| {
            y.row(r)
                .iter()
                .enumerate()
                .map(|(c, &v)| T::from_usize(c + 1) * v)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::gemm_abt_reference;

    #[test]
    fn triple_from_tile_small() {
        // C = [[1,2],[3,4]]
        let acc = [1.0f64, 2.0, 3.0, 4.0];
        let t = ChecksumTriple::from_tile(&acc, 2, 2);
        assert_eq!(t.s11, 10.0);
        assert_eq!(t.s21, 1.0 * (1.0 + 2.0) + 2.0 * (3.0 + 4.0));
        assert_eq!(t.s12, 1.0 * (1.0 + 3.0) + 2.0 * (2.0 + 4.0));
    }

    #[test]
    fn rank1_telescope_matches_tile_checksums() {
        // Bilinearity: accumulating input sums per k must equal the tile
        // checksums of C = A·Bᵀ.
        let a = Matrix::<f64>::from_fn(4, 6, |r, c| (r as f64 + 1.0) * 0.3 - c as f64 * 0.11);
        let b = Matrix::<f64>::from_fn(3, 6, |r, c| 0.7 - r as f64 * 0.2 + c as f64 * 0.05);
        let c = gemm_abt_reference(&a, &b);
        let direct = ChecksumTriple::from_tile(c.as_slice(), 4, 3);

        let mut online = ChecksumTriple::zero();
        for k in 0..6 {
            let a1: f64 = (0..4).map(|i| a.get(i, k)).sum();
            let a2: f64 = (0..4).map(|i| (i as f64 + 1.0) * a.get(i, k)).sum();
            let b1: f64 = (0..3).map(|j| b.get(j, k)).sum();
            let b2: f64 = (0..3).map(|j| (j as f64 + 1.0) * b.get(j, k)).sum();
            online.accumulate_rank1(a1, a2, b1, b2);
        }
        assert!((online.s11 - direct.s11).abs() < 1e-9);
        assert!((online.s21 - direct.s21).abs() < 1e-9);
        assert!((online.s12 - direct.s12).abs() < 1e-9);
    }

    #[test]
    fn encodings_match_definitions() {
        let x = Matrix::<f32>::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        // cols: [0,1],[2,3],[4,5]
        assert_eq!(encode_col_sums(&x), vec![6.0, 9.0]);
        assert_eq!(
            encode_weighted_col_sums(&x),
            vec![0.0 + 4.0 + 12.0, 1.0 + 6.0 + 15.0]
        );
        assert_eq!(encode_row_sums(&x), vec![1.0, 5.0, 9.0]);
        assert_eq!(encode_weighted_row_sums(&x), vec![2.0, 8.0, 14.0]);
    }

    #[test]
    fn diff_and_scale() {
        let a = ChecksumTriple {
            s11: 5.0f64,
            s21: -3.0,
            s12: 1.0,
        };
        let b = ChecksumTriple {
            s11: 4.0f64,
            s21: -1.0,
            s12: 1.0,
        };
        let d = a.diff(&b);
        assert_eq!((d.s11, d.s21, d.s12), (1.0, -2.0, 0.0));
        assert_eq!(a.scale(), 5.0);
    }
}
