//! # ftk-abft — algorithm-based fault tolerance for the distance GEMM
//!
//! Implements the paper's fault-tolerance layer (§II-C, §IV):
//!
//! * [`checksum`] — the `e1 = [1,1,…,1]` and `e2 = [1,2,…,n]` encodings of
//!   operands and accumulator tiles,
//! * [`bounds`] — the FP-slack policy that keeps Hamerly bound pruning
//!   consistent with the reference scan and gives bound revalidation its
//!   false-alarm immunity,
//! * [`quant`] — the quantization-slack margin policy that keeps
//!   quantized-table predict label-exact against the reference scan,
//! * [`threshold`] — the detection threshold δ policy (floating-point
//!   rounding must not raise false alarms; injected bit flips above the
//!   noise floor must),
//! * [`detect`] — checksum comparison and discrepancy extraction,
//! * [`mod@locate`] — **location encoding**: recovering the (row, column) of a
//!   corrupted accumulator element from the ratios of weighted checksum
//!   discrepancies,
//! * [`correct`] — in-place subtraction of the error magnitude,
//! * [`online`] — the per-warp online state machine fused into the tensor
//!   kernel's main loop (Fig. 6),
//! * [`schemes`] — the three competing schemes evaluated in the paper:
//!   FT K-means (warp-level detect + correct), Kosaian (warp-level detect
//!   only, recompute to correct), Wu (threadblock-level, register-reuse —
//!   degraded on Ampere),
//! * [`dmr`] — dual modular redundancy for the memory-bound centroid
//!   update.

pub mod bounds;
pub mod checksum;
pub mod correct;
pub mod detect;
pub mod dmr;
pub mod locate;
pub mod online;
pub mod quant;
pub mod schemes;
pub mod threshold;

pub use bounds::BoundPolicy;
pub use checksum::ChecksumTriple;
pub use correct::correct_in_place;
pub use detect::{compare, Discrepancy};
pub use locate::{locate, Located};
pub use online::{CheckOutcome, WarpOnlineState};
pub use quant::QuantMargin;
pub use schemes::SchemeKind;
pub use threshold::ThresholdPolicy;
