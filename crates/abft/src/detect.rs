//! Checksum comparison: does the accumulator agree with its online
//! checksums, and if not, what are the discrepancies?

use crate::checksum::ChecksumTriple;
use crate::threshold::ThresholdPolicy;
use gpu_sim::Scalar;

/// The discrepancies between observed tile checksums and the online
/// reference, in `f64` for stable ratio arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discrepancy {
    /// `s11(observed) − s11(reference)` — the error magnitude `d`.
    pub d: f64,
    /// `s21` discrepancy; `d21 / d` recovers the corrupted row weight.
    pub d21: f64,
    /// `s12` discrepancy; `d12 / d` recovers the corrupted column weight.
    pub d12: f64,
    /// Magnitude scale the threshold was computed from.
    pub scale: f64,
}

/// Compare the checksums of the observed accumulator tile against the
/// online reference. Returns `None` when everything agrees within δ.
pub fn compare<T: Scalar>(
    observed: &ChecksumTriple<T>,
    reference: &ChecksumTriple<T>,
    policy: &ThresholdPolicy,
) -> Option<Discrepancy> {
    let diff = observed.diff(reference);
    let scale = observed.scale().max(reference.scale());
    let d = diff.s11.to_f64();
    let d21 = diff.s21.to_f64();
    let d12 = diff.s12.to_f64();
    // An error anywhere in the tile perturbs s11 by the raw magnitude and
    // the weighted sums by (index+1) times it — checking all three catches
    // corruptions whose plain sum happens to cancel (it cannot cancel in
    // all three simultaneously for a single error).
    let hit = policy.is_error(d, scale)
        || policy.is_error(d21, scale * 2.0)
        || policy.is_error(d12, scale * 2.0);
    if hit {
        Some(Discrepancy { d, d21, d12, scale })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Precision;

    fn policy() -> ThresholdPolicy {
        ThresholdPolicy::for_precision(Precision::Fp64)
    }

    #[test]
    fn clean_tile_passes() {
        let obs = ChecksumTriple {
            s11: 10.0f64,
            s21: 17.0,
            s12: 16.0,
        };
        let r = obs;
        assert!(compare(&obs, &r, &policy()).is_none());
    }

    #[test]
    fn rounding_noise_passes() {
        let obs = ChecksumTriple {
            s11: 10.0f64,
            s21: 17.0,
            s12: 16.0,
        };
        let mut r = obs;
        r.s11 += 1e-12;
        assert!(compare(&obs, &r, &policy()).is_none());
    }

    #[test]
    fn real_error_is_flagged_with_magnitude() {
        let reference = ChecksumTriple {
            s11: 10.0f64,
            s21: 17.0,
            s12: 16.0,
        };
        let mut obs = reference;
        // error of +2.5 at (row 1, col 0) of a 2x2 tile: weights 2 and 1
        obs.s11 += 2.5;
        obs.s21 += 2.0 * 2.5;
        obs.s12 += 1.0 * 2.5;
        let disc = compare(&obs, &reference, &policy()).expect("must detect");
        assert!((disc.d - 2.5).abs() < 1e-12);
        assert!((disc.d21 / disc.d - 2.0).abs() < 1e-12);
        assert!((disc.d12 / disc.d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_only_discrepancy_still_detected() {
        // Pathological: plain sum cancels (e.g. error hit the s11 checksum
        // itself) but a weighted checksum deviates.
        let reference = ChecksumTriple {
            s11: 10.0f64,
            s21: 17.0,
            s12: 16.0,
        };
        let mut obs = reference;
        obs.s21 += 5.0;
        assert!(compare(&obs, &reference, &policy()).is_some());
    }
}
