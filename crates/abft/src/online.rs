//! The per-warp online checksum state machine fused into the tensor
//! kernel's main loop (paper Fig. 6).
//!
//! Per K-slab the warp already holds its A and B register fragments, so the
//! input checksums (`e1ᵀX`, `Xᵀe2`, `Ye1`, `Ye2` — lines 15–18) cost only
//! CUDA-core adds and **no extra memory traffic** — this is what makes the
//! scheme compatible with `cp.async`, unlike register-reuse ABFT. The three
//! checksum products (lines 22–24) are genuine tensor-core MMAs and pass
//! through the same [`gpu_sim::FaultHook`] as payload MMAs, so injected
//! faults can strike the checksums themselves; the state machine handles
//! that case by re-baselining (under the single-event-upset assumption a
//! located failure in the checksum implies a clean payload).

use crate::checksum::ChecksumTriple;
use crate::correct::correct_in_place;
use crate::detect::compare;
use crate::locate::{locate, Located};
use crate::threshold::ThresholdPolicy;
use gpu_sim::counters::EventSink;
use gpu_sim::mma::{FaultHook, FragmentMma, MmaSite};
use gpu_sim::warp::{frag_col_sum, frag_col_weighted_sum};
use gpu_sim::Scalar;

/// Whether the state machine corrects in place or only detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnlineMode {
    /// FT K-means: detect, locate, correct in place.
    DetectCorrect,
    /// Kosaian-style: detect only; the caller must recompute.
    DetectOnly,
}

/// Outcome of one online verification sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckOutcome {
    /// Checksums agree within δ.
    Clean,
    /// A single payload error was located and subtracted.
    Corrected {
        row: usize,
        col: usize,
        magnitude: f64,
    },
    /// The discrepancy was inconsistent with a single payload error (the
    /// fault hit a checksum accumulator); the reference was re-baselined to
    /// the payload.
    Rebaselined,
    /// Detection-only mode: an error was detected; recompute from
    /// `since_k`.
    RecomputeRequired { since_k: usize },
}

/// Per-warp online ABFT state.
#[derive(Debug, Clone)]
pub struct WarpOnlineState<T> {
    reference: ChecksumTriple<T>,
    wm: usize,
    wn: usize,
    policy: ThresholdPolicy,
    mode: OnlineMode,
    last_verified_k: usize,
    dot: FragmentMma,
}

impl<T: Scalar> WarpOnlineState<T> {
    /// Fresh state for a `wm x wn` warp accumulator tile.
    pub fn new(wm: usize, wn: usize, policy: ThresholdPolicy, mode: OnlineMode) -> Self {
        WarpOnlineState {
            reference: ChecksumTriple::zero(),
            wm,
            wn,
            policy,
            mode,
            last_verified_k: 0,
            dot: FragmentMma::new::<T>(1, 1),
        }
    }

    /// The mode this state operates in.
    pub fn mode(&self) -> OnlineMode {
        self.mode
    }

    /// Current reference checksums (test introspection).
    pub fn reference(&self) -> &ChecksumTriple<T> {
        &self.reference
    }

    /// Accumulate the checksum contribution of one K-slab from the warp's
    /// register fragments (`a_frag`: `wm x kk`, `b_frag`: `wn x kk`).
    ///
    /// The per-column input sums run on CUDA cores; the three dot products
    /// run as tensor-core MMAs through `hook` (so they are themselves
    /// corruptible — the paper's fault model does not exempt checksum
    /// computation).
    pub fn accumulate<H: FaultHook<T> + ?Sized, C: EventSink + ?Sized>(
        &mut self,
        a_frag: &[T],
        b_frag: &[T],
        kk: usize,
        site: MmaSite,
        hook: &H,
        counters: &C,
    ) {
        debug_assert_eq!(a_frag.len(), self.wm * kk);
        debug_assert_eq!(b_frag.len(), self.wn * kk);
        // Input sums (Fig. 6 lines 15-18): e1ᵀA, e2ᵀA, Be1, Be2 per column.
        let mut a1 = vec![T::ZERO; kk];
        let mut a2 = vec![T::ZERO; kk];
        let mut b1 = vec![T::ZERO; kk];
        let mut b2 = vec![T::ZERO; kk];
        for k in 0..kk {
            a1[k] = frag_col_sum(a_frag, self.wm, kk, k);
            b1[k] = frag_col_sum(b_frag, self.wn, kk, k);
            if self.mode == OnlineMode::DetectCorrect {
                a2[k] = frag_col_weighted_sum(a_frag, self.wm, kk, k);
                b2[k] = frag_col_weighted_sum(b_frag, self.wn, kk, k);
            }
        }
        counters.add_ft_cuda((2 * (self.wm + self.wn) * kk) as u64);

        let cs_site = MmaSite {
            is_checksum: true,
            ..site
        };
        // s11 += Σ_k a1[k]·b1[k]  (one tensor-core dot per product)
        let mut acc11 = [self.reference.s11];
        self.dot
            .mma(&mut acc11, &a1, &b1, kk, cs_site, hook, counters);
        self.reference.s11 = acc11[0];
        if self.mode == OnlineMode::DetectCorrect {
            let mut acc21 = [self.reference.s21];
            self.dot
                .mma(&mut acc21, &a2, &b1, kk, cs_site, hook, counters);
            self.reference.s21 = acc21[0];
            let mut acc12 = [self.reference.s12];
            self.dot
                .mma(&mut acc12, &a1, &b2, kk, cs_site, hook, counters);
            self.reference.s12 = acc12[0];
        }
    }

    /// Verify the accumulator tile at K-position `k_now` and, in
    /// `DetectCorrect` mode, repair a located error in place (Fig. 6 lines
    /// 25–31).
    ///
    /// Decision tree (all under the single-event-upset assumption):
    ///
    /// 1. payload contains Inf/NaN → in-place arithmetic cannot restore it:
    ///    request recomputation;
    /// 2. checksums agree → clean;
    /// 3. detection-only mode → request recomputation;
    /// 4. the plain-sum checksum `s11` agrees but a weighted checksum
    ///    deviates → a single fault can only do that by striking a checksum
    ///    accumulator, so the payload is trustworthy: re-baseline;
    /// 5. `s11` deviates and the error locates → correct in place, then
    ///    re-verify (a correction polluted by rounding of an astronomical
    ///    error magnitude must not survive — fall back to recomputation);
    /// 6. `s11` deviates but location decoding fails (overflowed weighted
    ///    sums, multi-error) → request recomputation.
    pub fn check<C: EventSink + ?Sized>(
        &mut self,
        acc: &mut [T],
        k_now: usize,
        counters: &C,
    ) -> CheckOutcome {
        debug_assert_eq!(acc.len(), self.wm * self.wn);
        // (1) Inf/NaN in the payload: no subtraction can repair it.
        if acc.iter().any(|v| !v.is_finite_s()) {
            return CheckOutcome::RecomputeRequired {
                since_k: self.last_verified_k,
            };
        }
        let observed = self.observed(acc, counters);
        let Some(disc) = compare(&observed, &self.reference, &self.policy) else {
            self.last_verified_k = k_now;
            return CheckOutcome::Clean;
        };
        // (3) Detection-only schemes never attempt in-place repair.
        if self.mode == OnlineMode::DetectOnly {
            return CheckOutcome::RecomputeRequired {
                since_k: self.last_verified_k,
            };
        }
        // (4) A payload error of magnitude e perturbs s11 by e; if s11
        // agrees, the fault must have hit a checksum accumulator.
        if !self.policy.is_error(disc.d, disc.scale) {
            self.rebaseline(acc, counters);
            self.last_verified_k = k_now;
            return CheckOutcome::Rebaselined;
        }
        match locate(&disc, self.wm, self.wn) {
            Located::At { row, col } => {
                let magnitude = disc.d;
                correct_in_place(acc, self.wn, row, col, magnitude);
                // (5) Re-verify: a mislocated or precision-polluted
                // correction must not survive.
                let after = self.observed(acc, counters);
                if compare(&after, &self.reference, &self.policy).is_none() {
                    self.last_verified_k = k_now;
                    CheckOutcome::Corrected {
                        row,
                        col,
                        magnitude,
                    }
                } else {
                    correct_in_place(acc, self.wn, row, col, -magnitude);
                    CheckOutcome::RecomputeRequired {
                        since_k: self.last_verified_k,
                    }
                }
            }
            Located::Ambiguous => {
                // A payload error of magnitude e moves the weighted sums by
                // (r+1)·e and (c+1)·e ≥ e. If both weighted checksums agree
                // while s11 deviates, the fault hit the s11 accumulator
                // itself: the payload is trustworthy.
                let weighted_clean = !self.policy.is_error(disc.d21, disc.scale * 2.0)
                    && !self.policy.is_error(disc.d12, disc.scale * 2.0);
                if weighted_clean {
                    self.rebaseline(acc, counters);
                    self.last_verified_k = k_now;
                    CheckOutcome::Rebaselined
                } else {
                    // (6) Unlocatable payload error (overflow, multi-error).
                    CheckOutcome::RecomputeRequired {
                        since_k: self.last_verified_k,
                    }
                }
            }
        }
    }

    /// Reset the reference checksums to match the current accumulator
    /// (after an external recompute, or when the checksums were corrupted).
    pub fn rebaseline<C: EventSink + ?Sized>(&mut self, acc: &[T], counters: &C) {
        self.reference = self.observed(acc, counters);
    }

    fn observed<C: EventSink + ?Sized>(&self, acc: &[T], counters: &C) -> ChecksumTriple<T> {
        counters.add_ft_cuda((3 * self.wm * self.wn) as u64);
        let mut t = ChecksumTriple::from_tile(acc, self.wm, self.wn);
        if self.mode == OnlineMode::DetectOnly {
            // Detection-only states never accumulated the weighted
            // references; comparing them against zero would false-alarm.
            t.s21 = T::ZERO;
            t.s12 = T::ZERO;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::counters::Counters;
    use gpu_sim::mma::NoFault;
    use gpu_sim::Precision;

    const WM: usize = 4;
    const WN: usize = 3;
    const KK: usize = 4;

    fn site() -> MmaSite {
        MmaSite {
            block: (0, 0),
            warp: 0,
            k_step: 0,
            is_checksum: false,
        }
    }

    /// Run `slabs` accumulation steps over deterministic fragments,
    /// returning (state, acc).
    fn run_clean(mode: OnlineMode) -> (WarpOnlineState<f64>, Vec<f64>) {
        let c = Counters::new();
        let policy = ThresholdPolicy::for_precision(Precision::Fp64);
        let mut st = WarpOnlineState::<f64>::new(WM, WN, policy, mode);
        let exec = FragmentMma::new::<f64>(WM, WN);
        let mut acc = vec![0.0f64; WM * WN];
        for slab in 0..3 {
            let a: Vec<f64> = (0..WM * KK)
                .map(|i| ((i + slab * 7) % 5) as f64 * 0.5 - 1.0)
                .collect();
            let b: Vec<f64> = (0..WN * KK)
                .map(|i| ((i + slab * 3) % 7) as f64 * 0.25 - 0.75)
                .collect();
            exec.mma(&mut acc, &a, &b, KK, site(), &NoFault, &c);
            st.accumulate(&a, &b, KK, site(), &NoFault, &c);
        }
        (st, acc)
    }

    #[test]
    fn clean_run_verifies_clean() {
        let c = Counters::new();
        let (mut st, mut acc) = run_clean(OnlineMode::DetectCorrect);
        assert_eq!(st.check(&mut acc, 12, &c), CheckOutcome::Clean);
    }

    #[test]
    fn payload_error_is_located_and_corrected() {
        let c = Counters::new();
        let (mut st, mut acc) = run_clean(OnlineMode::DetectCorrect);
        let clean = acc.clone();
        acc[2 * WN + 1] += 13.5; // corrupt (2,1)
        match st.check(&mut acc, 12, &c) {
            CheckOutcome::Corrected {
                row,
                col,
                magnitude,
            } => {
                assert_eq!((row, col), (2, 1));
                assert!((magnitude - 13.5).abs() < 1e-9);
            }
            other => panic!("expected correction, got {other:?}"),
        }
        for (a, b) in acc.iter().zip(&clean) {
            assert!((a - b).abs() < 1e-9, "tile restored");
        }
        // A subsequent sweep is clean.
        assert_eq!(st.check(&mut acc, 12, &c), CheckOutcome::Clean);
    }

    #[test]
    fn negative_error_corrected_too() {
        let c = Counters::new();
        let (mut st, mut acc) = run_clean(OnlineMode::DetectCorrect);
        let clean = acc.clone();
        acc[0] -= 42.0;
        assert!(matches!(
            st.check(&mut acc, 12, &c),
            CheckOutcome::Corrected { row: 0, col: 0, .. }
        ));
        assert!((acc[0] - clean[0]).abs() < 1e-9);
    }

    #[test]
    fn checksum_corruption_rebaselines_without_touching_payload() {
        let c = Counters::new();
        let (mut st, mut acc) = run_clean(OnlineMode::DetectCorrect);
        let clean = acc.clone();
        // Corrupt the reference checksum (as if the fault hit a checksum MMA).
        st.reference.s11 += 99.0;
        assert_eq!(st.check(&mut acc, 12, &c), CheckOutcome::Rebaselined);
        assert_eq!(acc, clean, "payload untouched");
        assert_eq!(st.check(&mut acc, 12, &c), CheckOutcome::Clean);
    }

    #[test]
    fn detect_only_mode_requests_recompute() {
        let c = Counters::new();
        let (mut st, mut acc) = run_clean(OnlineMode::DetectOnly);
        acc[5] += 7.0;
        assert_eq!(
            st.check(&mut acc, 12, &c),
            CheckOutcome::RecomputeRequired { since_k: 0 }
        );
        // After the caller recomputes, it re-baselines and proceeds.
        acc[5] -= 7.0;
        st.rebaseline(&acc, &c);
        assert_eq!(st.check(&mut acc, 16, &c), CheckOutcome::Clean);
    }

    #[test]
    fn detect_only_skips_weighted_checksums() {
        let c = Counters::new();
        let policy = ThresholdPolicy::for_precision(Precision::Fp64);
        let mut st = WarpOnlineState::<f64>::new(WM, WN, policy, OnlineMode::DetectOnly);
        let a = vec![1.0f64; WM * KK];
        let b = vec![2.0f64; WN * KK];
        st.accumulate(&a, &b, KK, site(), &NoFault, &c);
        assert_eq!(st.reference().s21, 0.0, "weighted row checksum skipped");
        assert_eq!(st.reference().s12, 0.0, "weighted col checksum skipped");
        // s11 = Σ_k (Σ_i 1)(Σ_j 2) = KK * WM * 2*WN
        assert_eq!(st.reference().s11, (KK * WM * 2 * WN) as f64);
    }

    #[test]
    fn counters_track_ft_work() {
        let c = Counters::new();
        let policy = ThresholdPolicy::for_precision(Precision::Fp64);
        let mut st = WarpOnlineState::<f64>::new(WM, WN, policy, OnlineMode::DetectCorrect);
        let a = vec![1.0f64; WM * KK];
        let b = vec![1.0f64; WN * KK];
        st.accumulate(&a, &b, KK, site(), &NoFault, &c);
        let s = c.snapshot();
        assert!(s.ft_cuda_ops > 0);
        assert_eq!(s.ft_mma_ops, 3, "three checksum dot-MMAs per slab");
        assert_eq!(s.mma_ops, 0, "no payload MMAs issued here");
    }
}
