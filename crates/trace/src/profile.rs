//! Phase profiler: folds a recorded stream into a per-phase modeled-time
//! breakdown (the per-phase witness for the paper's §III cost ordering).

use crate::event::{Record, TraceEvent};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Launches emitted outside any open phase land under this pseudo-phase.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// Aggregated statistics for one phase name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Completed spans (matched `PhaseEnd` events).
    pub spans: u64,
    /// Kernel launches attributed to this phase (innermost-open wins).
    pub launches: u64,
    /// Total modeled time of those launches, seconds.
    pub modeled_s: f64,
    /// Summed counter deltas from the phase's `PhaseEnd` records.
    pub fields: BTreeMap<&'static str, u64>,
}

/// Order-independent slice of [`PhaseStats`] used by the serial-vs-pool
/// determinism tests: span counts, launch counts, and counter-delta sums
/// are identical across execution modes; modeled-time float totals (whose
/// summation order may differ) are deliberately excluded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseCounts {
    /// Completed spans.
    pub spans: u64,
    /// Launches attributed to the phase.
    pub launches: u64,
    /// Summed counter deltas.
    pub fields: BTreeMap<&'static str, u64>,
}

/// Per-phase aggregation of a recorded stream.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    phases: BTreeMap<&'static str, PhaseStats>,
}

impl PhaseProfile {
    /// Fold `records` into per-phase stats. Launches are attributed to the
    /// innermost phase open *on their own track* at the time they appear;
    /// unmatched ends and orphan launches are tolerated (ring-buffer
    /// eviction can clip span opens).
    pub fn from_records(records: &[Record]) -> Self {
        let mut phases: BTreeMap<&'static str, PhaseStats> = BTreeMap::new();
        let mut open: HashMap<u32, Vec<&'static str>> = HashMap::new();
        for record in records {
            let stack = open.entry(record.track).or_default();
            match &record.event {
                TraceEvent::PhaseBegin { phase, .. } => stack.push(phase),
                TraceEvent::PhaseEnd { phase, fields, .. } => {
                    if let Some(pos) = stack.iter().rposition(|p| p == phase) {
                        stack.truncate(pos);
                    }
                    let stats = phases.entry(phase).or_default();
                    stats.spans += 1;
                    for (name, value) in fields {
                        *stats.fields.entry(name).or_default() += value;
                    }
                }
                TraceEvent::Launch { modeled_s, .. } => {
                    let phase = stack.last().copied().unwrap_or(UNATTRIBUTED);
                    let stats = phases.entry(phase).or_default();
                    stats.launches += 1;
                    stats.modeled_s += modeled_s;
                }
                TraceEvent::Fault { .. } | TraceEvent::Mark { .. } => {}
            }
        }
        PhaseProfile { phases }
    }

    /// Stats for one phase, if any record mentioned it.
    pub fn get(&self, phase: &str) -> Option<&PhaseStats> {
        self.phases.get(phase)
    }

    /// Total modeled launch time attributed to `phase`, seconds (0.0 when
    /// the phase never appeared).
    pub fn modeled_s(&self, phase: &str) -> f64 {
        self.get(phase).map_or(0.0, |s| s.modeled_s)
    }

    /// Summed counter-delta value of `field` across `phase`'s spans.
    pub fn field_total(&self, phase: &str, field: &str) -> u64 {
        self.get(phase)
            .and_then(|s| s.fields.get(field).copied())
            .unwrap_or(0)
    }

    /// Iterate phases in name order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, &PhaseStats)> {
        self.phases.iter().map(|(k, v)| (*k, v))
    }

    /// Total modeled launch time across all phases, seconds.
    pub fn total_modeled_s(&self) -> f64 {
        self.phases.values().map(|s| s.modeled_s).sum()
    }

    /// The order-independent count/delta view (see [`PhaseCounts`]).
    pub fn counts(&self) -> BTreeMap<&'static str, PhaseCounts> {
        self.phases
            .iter()
            .map(|(phase, s)| {
                (
                    *phase,
                    PhaseCounts {
                        spans: s.spans,
                        launches: s.launches,
                        fields: s.fields.clone(),
                    },
                )
            })
            .collect()
    }

    /// Render a text table, phases sorted by modeled time (descending).
    ///
    /// `bytes` is the sum of the phase's `bytes_loaded` + `bytes_stored`
    /// counter deltas when the producer reported them.
    pub fn to_table(&self) -> String {
        let mut rows: Vec<(&'static str, &PhaseStats)> =
            self.phases.iter().map(|(k, v)| (*k, v)).collect();
        rows.sort_by(|a, b| {
            b.1.modeled_s
                .partial_cmp(&a.1.modeled_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        let total = self.total_modeled_s().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>9} {:>12} {:>7} {:>14}",
            "phase", "spans", "launches", "modeled_ms", "share", "bytes"
        );
        for (phase, s) in &rows {
            let bytes = s.fields.get("bytes_loaded").copied().unwrap_or(0)
                + s.fields.get("bytes_stored").copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>9} {:>12.3} {:>6.1}% {:>14}",
                phase,
                s.spans,
                s.launches,
                s.modeled_s * 1e3,
                s.modeled_s / total * 100.0,
                bytes
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>9} {:>12.3} {:>6.1}% {:>14}",
            "total",
            "-",
            rows.iter().map(|(_, s)| s.launches).sum::<u64>(),
            self.total_modeled_s() * 1e3,
            100.0,
            "-"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(event: TraceEvent) -> Record {
        Record { track: 0, event }
    }

    #[test]
    fn launches_attribute_to_innermost_phase() {
        let records = vec![
            rec(TraceEvent::PhaseBegin {
                phase: "assignment",
                index: 0,
            }),
            rec(TraceEvent::Launch {
                label: "assign",
                grid: (1, 1, 1),
                modeled_s: 3e-3,
                fields: vec![],
            }),
            rec(TraceEvent::PhaseEnd {
                phase: "assignment",
                index: 0,
                fields: vec![("bytes_loaded", 100), ("bytes_stored", 20)],
            }),
            rec(TraceEvent::PhaseBegin {
                phase: "update",
                index: 0,
            }),
            rec(TraceEvent::Launch {
                label: "update",
                grid: (1, 1, 1),
                modeled_s: 1e-3,
                fields: vec![],
            }),
            rec(TraceEvent::PhaseEnd {
                phase: "update",
                index: 0,
                fields: vec![("bytes_stored", 40)],
            }),
            // Orphan launch outside any phase.
            rec(TraceEvent::Launch {
                label: "stray",
                grid: (1, 1, 1),
                modeled_s: 5e-4,
                fields: vec![],
            }),
        ];
        let profile = PhaseProfile::from_records(&records);
        assert_eq!(profile.get("assignment").unwrap().launches, 1);
        assert!(profile.modeled_s("assignment") > profile.modeled_s("update"));
        assert_eq!(profile.field_total("assignment", "bytes_loaded"), 100);
        assert_eq!(profile.field_total("update", "bytes_stored"), 40);
        assert_eq!(profile.get(UNATTRIBUTED).unwrap().launches, 1);
        let table = profile.to_table();
        assert!(table.contains("assignment"), "{table}");
        assert!(table.contains("total"), "{table}");
        // Counts view is comparable across runs.
        assert_eq!(profile.counts(), profile.clone().counts());
    }

    #[test]
    fn unmatched_end_is_tolerated() {
        let records = vec![rec(TraceEvent::PhaseEnd {
            phase: "drift",
            index: 7,
            fields: vec![],
        })];
        let profile = PhaseProfile::from_records(&records);
        assert_eq!(profile.get("drift").unwrap().spans, 1);
    }
}
