//! Prometheus-style metrics: counters, gauges, fixed-bucket histograms,
//! and a registry that renders the text exposition format.
//!
//! This is the home for *wall-clock* serving quantities (latency, queue
//! delay), which are intentionally outside the trace stream's
//! byte-stability contract. Histograms use fixed bucket bounds so p50/p99
//! come from bucket interpolation, not stored samples — constant memory
//! regardless of traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default latency bucket bounds, microseconds. Spans sub-100µs direct
/// predicts through multi-second refit storms.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge (with a max-tracking helper for watermarks).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (watermark semantics).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram over `u64` observations (typically µs).
///
/// Buckets are per-bound (non-cumulative) internally; rendering and
/// snapshots produce the cumulative `le` form Prometheus expects. A final
/// implicit `+Inf` bucket catches overflow observations.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // len = bounds.len() + 1 (+Inf last)
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Histogram with the given ascending bucket bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time copy for quantile math and snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    /// Estimated quantile (`q` in `[0, 1]`) from bucket interpolation;
    /// see [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// Point-in-time histogram state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (exclusive of the implicit `+Inf`).
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts; last is `+Inf`.
    pub buckets: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimated quantile from linear interpolation inside the bucket the
    /// target rank falls into (the same estimate PromQL's
    /// `histogram_quantile` produces). Ranks landing in the `+Inf` bucket
    /// clamp to the highest finite bound; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if (cumulative as f64) >= rank {
                if i >= self.bounds.len() {
                    // +Inf bucket: clamp to the largest finite bound.
                    return self.bounds.last().copied().unwrap_or(0) as f64;
                }
                let upper = self.bounds[i] as f64;
                let lower = if i == 0 {
                    0.0
                } else {
                    self.bounds[i - 1] as f64
                };
                let in_bucket = n as f64;
                if in_bucket == 0.0 {
                    return upper;
                }
                let below = (cumulative - n) as f64;
                return lower + (upper - lower) * ((rank - below) / in_bucket);
            }
        }
        self.bounds.last().copied().unwrap_or(0) as f64
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

type Labels = Vec<(String, String)>;

struct Family {
    name: String,
    help: String,
    entries: Vec<(Labels, Metric)>,
}

/// A named collection of metric families rendered in registration order
/// as Prometheus text exposition format (see [`Registry::render`]).
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name{labels}`.
    ///
    /// # Panics
    /// If `name` already exists with a different metric kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.entry(name, help, labels, || {
            Metric::Counter(Arc::new(Counter::default()))
        })
        .map(|m| match m {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        })
        .unwrap_or_else(|kind| panic!("metric {name} already registered as {kind}"))
    }

    /// Get-or-create the gauge `name{labels}`.
    ///
    /// # Panics
    /// If `name` already exists with a different metric kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.entry(name, help, labels, || {
            Metric::Gauge(Arc::new(Gauge::default()))
        })
        .map(|m| match m {
            Metric::Gauge(g) => g,
            _ => unreachable!(),
        })
        .unwrap_or_else(|kind| panic!("metric {name} already registered as {kind}"))
    }

    /// Get-or-create the histogram `name{labels}` with `bounds` (used
    /// only on first creation of that label set).
    ///
    /// # Panics
    /// If `name` already exists with a different metric kind.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.entry(name, help, labels, || {
            Metric::Histogram(Arc::new(Histogram::new(bounds)))
        })
        .map(|m| match m {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        })
        .unwrap_or_else(|kind| panic!("metric {name} already registered as {kind}"))
    }

    fn entry(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Result<Metric, &'static str> {
        let labels: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    entries: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        if let Some((_, metric)) = family.entries.iter().find(|(l, _)| *l == labels) {
            let wanted = make();
            if metric.kind() != wanted.kind() {
                return Err(metric.kind());
            }
            return Ok(clone_metric(metric));
        }
        let metric = make();
        if let Some((_, existing)) = family.entries.first() {
            if existing.kind() != metric.kind() {
                return Err(existing.kind());
            }
        }
        let out = clone_metric(&metric);
        family.entries.push((labels, metric));
        Ok(out)
    }

    /// Render all families as Prometheus text exposition format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for family in families.iter() {
            let kind = family
                .entries
                .first()
                .map(|(_, m)| m.kind())
                .unwrap_or("untyped");
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, kind);
            for (labels, metric) in &family.entries {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(labels, None),
                            c.get()
                        );
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(labels, None),
                            g.get()
                        );
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &n) in snap.buckets.iter().enumerate() {
                            cumulative += n;
                            let le = if i < snap.bounds.len() {
                                snap.bounds[i].to_string()
                            } else {
                                "+Inf".to_string()
                            };
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                family.name,
                                label_block(labels, Some(&le)),
                                cumulative
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            family.name,
                            label_block(labels, None),
                            snap.sum
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            family.name,
                            label_block(labels, None),
                            snap.count
                        );
                    }
                }
            }
        }
        out
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(c.clone()),
        Metric::Gauge(g) => Metric::Gauge(g.clone()),
        Metric::Histogram(h) => Metric::Histogram(h.clone()),
    }
}

fn label_block(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("requests_total", "Requests served", &[("tenant", "a")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same name+labels returns the same underlying counter.
        let c2 = reg.counter("requests_total", "Requests served", &[("tenant", "a")]);
        c2.inc();
        assert_eq!(c.get(), 4);
        let g = reg.gauge("occupancy", "Rows in last batch", &[]);
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        let text = reg.render();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total{tenant=\"a\"} 4"), "{text}");
        assert!(text.contains("occupancy 11"), "{text}");
    }

    #[test]
    fn histogram_buckets_quantiles_and_rendering() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 7, 50, 60, 70, 500] {
            h.observe(v);
        }
        h.observe(5000); // lands in +Inf
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.buckets, vec![2, 3, 1, 1]);
        assert_eq!(snap.sum, 5 + 7 + 50 + 60 + 70 + 500 + 5000);
        // Median rank 3.5 falls in the (10, 100] bucket.
        let p50 = snap.quantile(0.5);
        assert!((10.0..=100.0).contains(&p50), "p50 = {p50}");
        // p99 lands in +Inf, clamping to the top finite bound.
        assert_eq!(snap.quantile(0.99), 1000.0);
        assert_eq!(
            HistogramSnapshot::quantile(&Histogram::new(&[10]).snapshot(), 0.5),
            0.0
        );

        let reg = Registry::new();
        let hr = reg.histogram(
            "latency_us",
            "Latency",
            &[10, 100, 1000],
            &[("tenant", "b")],
        );
        hr.observe(42);
        let text = reg.render();
        assert!(text.contains("# TYPE latency_us histogram"), "{text}");
        assert!(
            text.contains("latency_us_bucket{tenant=\"b\",le=\"10\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("latency_us_bucket{tenant=\"b\",le=\"100\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("latency_us_bucket{tenant=\"b\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("latency_us_sum{tenant=\"b\"} 42"), "{text}");
        assert!(text.contains("latency_us_count{tenant=\"b\"} 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("m", "help", &[]);
        let _ = reg.gauge("m", "help", &[]);
    }
}
