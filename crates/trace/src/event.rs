//! The typed record model: [`TraceEvent`], its [`Fields`] payload, and the
//! byte-stable text serialization used by the determinism tests.

use std::fmt::Write as _;

/// A flat counter delta: `(field name, value)` pairs, zero entries elided
/// by the producer (`CounterSnapshot::nonzero_fields` in `gpu-sim`).
///
/// Kept as a plain vector rather than a map so ordering is exactly the
/// producer's declaration order — part of the byte-stability contract.
pub type Fields = Vec<(&'static str, u64)>;

/// One trace record: the emitting thread's track plus the event payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Deterministic small thread id (see [`crate::thread_track`]).
    pub track: u32,
    /// The event payload.
    pub event: TraceEvent,
}

/// A typed span or instant event.
///
/// Events carry *modeled* time and deterministic indices only — never
/// wall-clock — so recorded streams are reproducible. Wall-clock serving
/// quantities live in [`crate::metrics`] instead.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A named phase opened (driver phases: see [`crate::phases`]).
    PhaseBegin {
        /// Phase name (one of [`crate::phases`] for the built-in producers).
        phase: &'static str,
        /// Producer-scoped ordinal (e.g. Lloyd iteration number).
        index: u64,
    },
    /// The matching phase closed; `fields` is the phase's counter delta.
    PhaseEnd {
        /// Phase name, matching the open span.
        phase: &'static str,
        /// Producer-scoped ordinal, matching the open span.
        index: u64,
        /// Counter delta accumulated across the phase.
        fields: Fields,
    },
    /// One kernel launch: label, grid dims, counter delta, and modeled
    /// time from the calibrated timing model (roofline over the delta).
    Launch {
        /// Kernel label (e.g. `"assign_fused_v2"`).
        label: &'static str,
        /// Grid dimensions `(x, y, z)` in blocks.
        grid: (usize, usize, usize),
        /// Modeled execution time in seconds.
        modeled_s: f64,
        /// Counter delta charged by this launch.
        fields: Fields,
    },
    /// A fault-path instant: `count` occurrences of `kind` (see
    /// [`crate::faults`]) since the previous report.
    Fault {
        /// Fault kind.
        kind: &'static str,
        /// Occurrences since the last report (producers elide zero).
        count: u64,
    },
    /// A free-form instant marker with a numeric payload.
    Mark {
        /// Marker label.
        label: &'static str,
        /// Numeric payload.
        value: u64,
    },
}

impl Record {
    /// Append the canonical single-line text form (newline-terminated).
    ///
    /// This serialization is byte-stable for deterministic streams: field
    /// order is producer order and floats print with fixed precision.
    pub fn write_log_line(&self, out: &mut String) {
        let _ = write!(out, "[t{}] ", self.track);
        match &self.event {
            TraceEvent::PhaseBegin { phase, index } => {
                let _ = writeln!(out, "phase_begin {phase} #{index}");
            }
            TraceEvent::PhaseEnd {
                phase,
                index,
                fields,
            } => {
                let _ = write!(out, "phase_end {phase} #{index} ");
                write_fields(out, fields);
                out.push('\n');
            }
            TraceEvent::Launch {
                label,
                grid,
                modeled_s,
                fields,
            } => {
                let _ = write!(
                    out,
                    "launch {label} grid=({},{},{}) modeled_us={:.3} ",
                    grid.0,
                    grid.1,
                    grid.2,
                    modeled_s * 1e6
                );
                write_fields(out, fields);
                out.push('\n');
            }
            TraceEvent::Fault { kind, count } => {
                let _ = writeln!(out, "fault {kind} x{count}");
            }
            TraceEvent::Mark { label, value } => {
                let _ = writeln!(out, "mark {label}={value}");
            }
        }
    }
}

fn write_fields(out: &mut String, fields: &Fields) {
    out.push_str("fields{");
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{name}={value}");
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_line_format_is_stable() {
        let mut out = String::new();
        Record {
            track: 0,
            event: TraceEvent::Launch {
                label: "assign_fused_v2",
                grid: (128, 1, 1),
                modeled_s: 1.5e-4,
                fields: vec![("bytes_loaded", 4096), ("fma_ops", 512)],
            },
        }
        .write_log_line(&mut out);
        assert_eq!(
            out,
            "[t0] launch assign_fused_v2 grid=(128,1,1) modeled_us=150.000 \
             fields{bytes_loaded=4096,fma_ops=512}\n"
        );

        out.clear();
        Record {
            track: 2,
            event: TraceEvent::PhaseEnd {
                phase: "update",
                index: 3,
                fields: vec![],
            },
        }
        .write_log_line(&mut out);
        assert_eq!(out, "[t2] phase_end update #3 fields{}\n");
    }
}
