//! Structured tracing and metrics substrate for the FT K-Means stack.
//!
//! This crate sits *below* every other crate in the workspace (including
//! `gpu-sim`, which emits per-launch spans into it), so it is std-only and
//! knows nothing about counters, kernels, or servers. Producers hand it
//! typed [`TraceEvent`]s; counter deltas cross the boundary as a flat
//! [`Fields`] list of `(name, value)` pairs.
//!
//! # Zero overhead when disabled
//!
//! The hot-path contract is a single [`active()`] check (one thread-local
//! read plus one relaxed atomic load). Event construction — snapshotting
//! counters, formatting labels — happens only behind that check, either
//! explicitly (`if trace::active() { ... }`) or via [`emit_with`], which
//! takes a closure so the event is never built when no sink is installed.
//!
//! # Sink resolution
//!
//! Two scopes, mirroring `gpu_sim::exec`'s executor override:
//!
//! * **Thread-local** — [`with_sink`] installs a sink for the duration of a
//!   closure on the current thread (this is what
//!   `Session::with_trace_sink` routes through). It *overrides* the global
//!   sink on that thread.
//! * **Global** — [`install_global`] installs a process-wide sink, and the
//!   `FTK_TRACE=<path>` environment variable lazily installs a streaming
//!   [`ChromeWriterSink`](chrome::ChromeWriterSink) writing Chrome
//!   `chrome://tracing` JSON to `<path>` on first use.
//!
//! Worker threads of the `gpu-sim` pool do not inherit the caller's
//! thread-local sink; all span emission in the stack happens host-side on
//! the thread that owns the scope, which is also what keeps pool-mode
//! event counts deterministic.
//!
//! # Determinism
//!
//! Records carry *modeled* time (derived from counter deltas via the
//! calibrated timing model) and deterministic indices — never wall-clock.
//! Under `FTK_EXEC=serial` a [`RecordingSink`]
//! stream is byte-stable run-to-run ([`recording::RecordingSink::to_log_text`]);
//! under the pool, per-phase event counts and summed counter deltas match
//! serial even though interleaving may differ. Wall-clock quantities live
//! exclusively in the [`metrics`] registry, which is outside the
//! byte-stability contract.

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod profile;
pub mod recording;

pub use event::{Fields, Record, TraceEvent};
pub use recording::RecordingSink;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Canonical phase names emitted by the kmeans driver and friends.
///
/// Kept here (rather than in `kmeans`) so sinks, the profiler, and tests
/// can match on them without depending on the producer crates.
pub mod phases {
    /// Centroid seeding, device upload, and initial bound computation.
    pub const INIT: &str = "init";
    /// One assignment sweep (any kernel variant).
    pub const ASSIGNMENT: &str = "assignment";
    /// Centroid accumulation + finalize (the update kernels).
    pub const UPDATE: &str = "update";
    /// Centroid drift measurement and Hamerly bound maintenance.
    pub const DRIFT: &str = "drift";
    /// Hamerly bound revalidation / fault repair sweep.
    pub const REVALIDATION: &str = "revalidation";
    /// Quantized table (fp16/int8) build or rebuild.
    pub const QUANT_BUILD: &str = "quant_build";
    /// Reserved for the device-loss checkpoint/restart subsystem
    /// (ROADMAP "Device-level fault tolerance"); no producer emits it yet.
    pub const CHECKPOINT: &str = "checkpoint";
    /// Mini-batch assignment sweep inside `partial_fit`.
    pub const BATCH_ASSIGN: &str = "batch_assign";
    /// Mini-batch centroid fold inside `partial_fit`.
    pub const BATCH_UPDATE: &str = "batch_update";
    /// One `FittedModel` predict/assign call (serving path).
    pub const PREDICT: &str = "predict";
}

/// Canonical fault-event kinds (see [`TraceEvent::Fault`]).
pub mod faults {
    /// Bit flips injected by the campaign injector this step.
    pub const INJECTION: &str = "injection";
    /// Faults detected by a checksum / digest / bound check.
    pub const DETECTED: &str = "detected";
    /// Faults corrected in place (ABFT column/row correction).
    pub const CORRECTED: &str = "corrected";
    /// Checksum baselines recomputed after an uncorrectable mismatch.
    pub const REBASELINED: &str = "rebaselined";
    /// Samples recomputed by the Hamerly revalidation repair sweep.
    pub const RECOMPUTED: &str = "recomputed";
    /// DMR (dual modular redundancy) mismatches in the update kernel.
    pub const DMR_MISMATCH: &str = "dmr_mismatch";
    /// Revalidation sweeps triggered by a detected fault.
    pub const REVAL_REPAIR: &str = "reval_repair";
    /// Quantized predict fell back to the exact path for a query batch.
    pub const QUANT_FALLBACK: &str = "quant_fallback";
    /// Quantized table digest mismatch forcing a rebuild.
    pub const QUANT_DIGEST_MISMATCH: &str = "quant_digest_mismatch";
}

/// A consumer of trace records.
///
/// Implementations must be cheap and non-blocking where possible: `record`
/// is called synchronously from instrumented code (driver loops, launch
/// epilogues). The provided sinks are [`RecordingSink`] (bounded in-memory
/// ring) and [`chrome::ChromeWriterSink`] (streaming file writer); the
/// default is no sink at all, in which case instrumentation reduces to a
/// single flag check.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use trace::{Record, TraceEvent, TraceSink};
///
/// /// A sink that just counts launch spans.
/// #[derive(Default)]
/// struct LaunchCounter(AtomicU64);
///
/// impl TraceSink for LaunchCounter {
///     fn record(&self, record: Record) {
///         if matches!(record.event, TraceEvent::Launch { .. }) {
///             self.0.fetch_add(1, Ordering::Relaxed);
///         }
///     }
/// }
///
/// let sink = Arc::new(LaunchCounter::default());
/// let n = trace::with_sink(sink.clone(), || {
///     trace::emit_with(|| TraceEvent::Launch {
///         label: "demo",
///         grid: (4, 1, 1),
///         modeled_s: 1e-6,
///         fields: vec![("bytes_loaded", 1024)],
///     });
///     sink.0.load(Ordering::Relaxed)
/// });
/// assert_eq!(n, 1);
/// assert!(!trace::active()); // scope ended, back to zero-overhead
/// ```
pub trait TraceSink: Send + Sync {
    /// Consume one record. Called synchronously by the emitting thread.
    fn record(&self, record: Record);
}

thread_local! {
    static LOCAL_SINK: RefCell<Option<Arc<dyn TraceSink>>> = const { RefCell::new(None) };
    static LOCAL_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static LOCAL_TRACK: Cell<u32> = const { Cell::new(u32::MAX) };
}

static GLOBAL_INIT: Once = Once::new();
static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL_SINK: Mutex<Option<Arc<dyn TraceSink>>> = Mutex::new(None);
static NEXT_TRACK: AtomicU32 = AtomicU32::new(0);

/// True when any sink (thread-local or global) is installed.
///
/// This is the whole disabled-path cost: a thread-local flag read plus —
/// only when that is false — a relaxed atomic load.
#[inline]
pub fn active() -> bool {
    LOCAL_ACTIVE.with(|c| c.get()) || global_active()
}

#[inline]
fn global_active() -> bool {
    GLOBAL_INIT.call_once(init_global_from_env);
    GLOBAL_ACTIVE.load(Ordering::Relaxed)
}

fn init_global_from_env() {
    let Ok(path) = std::env::var("FTK_TRACE") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    match chrome::ChromeWriterSink::create(&path) {
        Ok(sink) => {
            *GLOBAL_SINK.lock().unwrap() = Some(Arc::new(sink));
            GLOBAL_ACTIVE.store(true, Ordering::Relaxed);
        }
        Err(err) => {
            eprintln!("trace: FTK_TRACE={path}: cannot open for writing: {err}");
        }
    }
}

/// Install a process-wide sink (overrides any `FTK_TRACE` sink).
///
/// Thread-local sinks installed via [`with_sink`] still take precedence on
/// their thread.
pub fn install_global(sink: Arc<dyn TraceSink>) {
    // Run (or skip) env init first so it cannot clobber this install later.
    GLOBAL_INIT.call_once(init_global_from_env);
    *GLOBAL_SINK.lock().unwrap() = Some(sink);
    GLOBAL_ACTIVE.store(true, Ordering::Relaxed);
}

/// Remove the process-wide sink (the `FTK_TRACE` env sink included).
pub fn uninstall_global() {
    GLOBAL_INIT.call_once(init_global_from_env);
    GLOBAL_ACTIVE.store(false, Ordering::Relaxed);
    *GLOBAL_SINK.lock().unwrap() = None;
}

/// Run `f` with `sink` installed as this thread's trace sink.
///
/// Nested scopes restore the previous sink on exit (drop-guard, so
/// panics unwind correctly). Pool worker threads spawned inside `f` do
/// *not* inherit the sink — emission is a host-side affair by design.
pub fn with_sink<R>(sink: Arc<dyn TraceSink>, f: impl FnOnce() -> R) -> R {
    struct Restore {
        prev: Option<Arc<dyn TraceSink>>,
        prev_active: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_SINK.with(|s| *s.borrow_mut() = self.prev.take());
            LOCAL_ACTIVE.with(|c| c.set(self.prev_active));
        }
    }
    let prev = LOCAL_SINK.with(|s| s.borrow_mut().replace(sink));
    let prev_active = LOCAL_ACTIVE.with(|c| c.replace(true));
    let _restore = Restore { prev, prev_active };
    f()
}

/// Deterministic small integer identifying the current thread's trace
/// track (assigned on first emission; serial runs always use track 0).
pub fn thread_track() -> u32 {
    LOCAL_TRACK.with(|c| {
        let mut t = c.get();
        if t == u32::MAX {
            t = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
            c.set(t);
        }
        t
    })
}

/// Emit an event, constructing it lazily: the closure runs only when a
/// sink is installed. This is the preferred call form for hot paths.
#[inline]
pub fn emit_with(f: impl FnOnce() -> TraceEvent) {
    if !active() {
        return;
    }
    emit_now(f());
}

/// Emit an already-constructed event. Prefer [`emit_with`] unless the
/// event was built behind your own [`active()`] check.
#[inline]
pub fn emit(event: TraceEvent) {
    if !active() {
        return;
    }
    emit_now(event);
}

#[cold]
fn emit_now(event: TraceEvent) {
    let record = Record {
        track: thread_track(),
        event,
    };
    // Thread-local sink overrides the global one on this thread.
    let sent_local = LOCAL_SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            sink.record(record.clone());
            true
        } else {
            false
        }
    });
    if !sent_local {
        if let Some(sink) = GLOBAL_SINK.lock().unwrap().as_ref() {
            sink.record(record);
        }
    }
}

/// Emit a [`TraceEvent::PhaseBegin`] if tracing is active.
#[inline]
pub fn phase_begin(phase: &'static str, index: u64) {
    emit_with(|| TraceEvent::PhaseBegin { phase, index });
}

/// Emit a [`TraceEvent::PhaseEnd`] if tracing is active. `fields` is
/// typically the phase's counter delta; the closure runs only when a sink
/// is installed.
#[inline]
pub fn phase_end(phase: &'static str, index: u64, fields: impl FnOnce() -> Fields) {
    emit_with(|| TraceEvent::PhaseEnd {
        phase,
        index,
        fields: fields(),
    });
}

/// Emit a [`TraceEvent::Fault`] if tracing is active and `count` is
/// nonzero (fault streams stay quiet on clean runs).
#[inline]
pub fn fault(kind: &'static str, count: u64) {
    if count == 0 {
        return;
    }
    emit_with(|| TraceEvent::Fault { kind, count });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default_on_fresh_thread() {
        std::thread::spawn(|| {
            // Global env sink may be installed by other tests' env; only
            // assert the local flag layering.
            LOCAL_ACTIVE.with(|c| assert!(!c.get()));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn with_sink_scopes_and_restores() {
        let sink = Arc::new(RecordingSink::new(16));
        assert!(!LOCAL_ACTIVE.with(|c| c.get()));
        with_sink(sink.clone(), || {
            assert!(active());
            emit(TraceEvent::Fault {
                kind: faults::DETECTED,
                count: 2,
            });
            // Nested scope with a different sink shadows the outer one.
            let inner = Arc::new(RecordingSink::new(16));
            with_sink(inner.clone(), || {
                emit(TraceEvent::Fault {
                    kind: faults::CORRECTED,
                    count: 1,
                });
            });
            assert_eq!(inner.len(), 1);
        });
        assert!(!LOCAL_ACTIVE.with(|c| c.get()));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn emit_with_skips_construction_when_disabled() {
        let mut built = false;
        // No local sink on this thread; if no global sink is active the
        // closure must not run. (When FTK_TRACE is set in the test env the
        // closure legitimately runs; guard on that.)
        if !active() {
            emit_with(|| {
                built = true;
                TraceEvent::Fault {
                    kind: faults::DETECTED,
                    count: 1,
                }
            });
            assert!(!built);
        }
    }

    #[test]
    fn fault_suppresses_zero_counts() {
        let sink = Arc::new(RecordingSink::new(16));
        with_sink(sink.clone(), || {
            fault(faults::INJECTION, 0);
            fault(faults::INJECTION, 3);
        });
        assert_eq!(sink.len(), 1);
    }
}
