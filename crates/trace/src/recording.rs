//! In-memory ring-buffered sink for tests, the phase profiler, and
//! post-hoc Chrome-trace export.

use crate::chrome;
use crate::event::Record;
use crate::profile::PhaseProfile;
use crate::TraceSink;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded in-memory sink: keeps the most recent `capacity` records,
/// counting (rather than blocking on) overflow.
///
/// Cloneable handles are obtained by wrapping in `Arc` (the sink is
/// internally synchronized). Exports: [`to_log_text`](Self::to_log_text)
/// (byte-stable, the determinism-test currency),
/// [`to_chrome_json`](Self::to_chrome_json) (`chrome://tracing` /
/// Perfetto timeline), and [`phase_profile`](Self::phase_profile)
/// (modeled-time breakdown per phase).
pub struct RecordingSink {
    inner: Mutex<Ring>,
}

struct Ring {
    records: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
}

impl RecordingSink {
    /// Sink keeping at most `capacity` records (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        RecordingSink {
            inner: Mutex::new(Ring {
                records: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Snapshot the buffered records in arrival order, with track ids
    /// renumbered densely by first appearance (first emitting thread →
    /// track 0, second → track 1, ...). Raw [`crate::thread_track`] ids
    /// are process-global and depend on which unrelated threads emitted
    /// first; dense renumbering is what makes the exports byte-stable
    /// run-to-run while still separating concurrent emitters.
    pub fn records(&self) -> Vec<Record> {
        let ring = self.inner.lock().unwrap();
        let mut dense: Vec<u32> = Vec::new();
        ring.records
            .iter()
            .map(|r| {
                let track = match dense.iter().position(|&t| t == r.track) {
                    Some(i) => i as u32,
                    None => {
                        dense.push(r.track);
                        (dense.len() - 1) as u32
                    }
                };
                Record {
                    track,
                    event: r.event.clone(),
                }
            })
            .collect()
    }

    /// Discard all buffered records (the dropped count is reset too).
    pub fn clear(&self) {
        let mut ring = self.inner.lock().unwrap();
        ring.records.clear();
        ring.dropped = 0;
    }

    /// Byte-stable one-line-per-record text form. Two serial runs of the
    /// same workload produce identical output (the determinism contract).
    pub fn to_log_text(&self) -> String {
        let mut out = String::new();
        for record in self.records() {
            record.write_log_line(&mut out);
        }
        out
    }

    /// Export as Chrome `chrome://tracing` JSON (also loadable in
    /// Perfetto). Timestamps come from a per-track modeled clock, not
    /// wall-time; see [`crate::chrome`].
    pub fn to_chrome_json(&self) -> String {
        chrome::chrome_json(&self.records())
    }

    /// Aggregate buffered records into a per-phase modeled-time profile.
    pub fn phase_profile(&self) -> PhaseProfile {
        PhaseProfile::from_records(&self.records())
    }
}

impl Default for RecordingSink {
    /// 64Ki records — ample for a full fit plus a serve storm.
    fn default() -> Self {
        RecordingSink::new(1 << 16)
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, record: Record) {
        let mut ring = self.inner.lock().unwrap();
        if ring.records.len() == ring.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn fault(kind: &'static str, count: u64) -> Record {
        Record {
            track: 0,
            event: TraceEvent::Fault { kind, count },
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let sink = RecordingSink::new(2);
        sink.record(fault("a", 1));
        sink.record(fault("b", 2));
        sink.record(fault("c", 3));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        let recs = sink.records();
        assert!(matches!(recs[0].event, TraceEvent::Fault { kind: "b", .. }));
        assert!(matches!(recs[1].event, TraceEvent::Fault { kind: "c", .. }));
    }

    #[test]
    fn log_text_round_trip_is_stable() {
        let sink = RecordingSink::default();
        sink.record(fault("detected", 4));
        assert_eq!(sink.to_log_text(), "[t0] fault detected x4\n");
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }
}
