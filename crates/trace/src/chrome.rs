//! Chrome `chrome://tracing` (Trace Event Format) export.
//!
//! Timestamps are **modeled**, not wall-clock: each track keeps a clock
//! that a [`TraceEvent::Launch`] advances by its modeled duration, so the
//! timeline you open in `chrome://tracing` or Perfetto shows where the
//! *modeled device time* went — the same currency as the bench figures.
//! Phase B/E markers and fault instants land at the track clock's current
//! position.

use crate::event::{Record, TraceEvent};
use crate::TraceSink;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::Mutex;

/// Per-track modeled clock used while converting records to trace-event
/// JSON objects. Shared by the batch exporter and the streaming sink.
#[derive(Default)]
struct ChromeClock {
    clock_us: HashMap<u32, f64>,
}

impl ChromeClock {
    /// Append the JSON object (no trailing comma) for one record.
    fn write_record(&mut self, out: &mut String, record: &Record) {
        let tid = record.track;
        let now = self.clock_us.entry(tid).or_insert(0.0);
        match &record.event {
            TraceEvent::PhaseBegin { phase, index } => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","ph":"B","ts":{:.3},"pid":0,"tid":{tid},"args":{{"index":{index}}}}}"#,
                    escape(phase),
                    *now
                );
            }
            TraceEvent::PhaseEnd { phase, fields, .. } => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","ph":"E","ts":{:.3},"pid":0,"tid":{tid},"args":{}}}"#,
                    escape(phase),
                    *now,
                    fields_json(fields)
                );
            }
            TraceEvent::Launch {
                label,
                grid,
                modeled_s,
                fields,
            } => {
                let dur_us = modeled_s * 1e6;
                let _ = write!(
                    out,
                    r#"{{"name":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":0,"tid":{tid},"args":{{"grid":"({},{},{})","counters":{}}}}}"#,
                    escape(label),
                    *now,
                    dur_us,
                    grid.0,
                    grid.1,
                    grid.2,
                    fields_json(fields)
                );
                *now += dur_us;
            }
            TraceEvent::Fault { kind, count } => {
                let _ = write!(
                    out,
                    r#"{{"name":"fault:{}","ph":"i","ts":{:.3},"pid":0,"tid":{tid},"s":"t","args":{{"count":{count}}}}}"#,
                    escape(kind),
                    *now
                );
            }
            TraceEvent::Mark { label, value } => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","ph":"i","ts":{:.3},"pid":0,"tid":{tid},"s":"t","args":{{"value":{value}}}}}"#,
                    escape(label),
                    *now
                );
            }
        }
    }
}

fn fields_json(fields: &[(&'static str, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#""{}":{value}"#, escape(name));
    }
    out.push('}');
    out
}

fn escape(s: &str) -> String {
    // Labels are static identifiers in practice; escape defensively anyway.
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Convert a record slice to a complete Chrome trace JSON array.
pub fn chrome_json(records: &[Record]) -> String {
    let mut clock = ChromeClock::default();
    let mut out = String::from("[\n");
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        clock.write_record(&mut out, record);
    }
    out.push_str("\n]\n");
    out
}

/// A sink that streams Chrome trace JSON to a file as records arrive.
///
/// This is what `FTK_TRACE=<path>` installs. The array is left
/// unterminated if the process exits without [`flush`](Self::flush) —
/// `chrome://tracing` and Perfetto both tolerate a truncated array, so a
/// crashed run still yields a loadable timeline.
pub struct ChromeWriterSink {
    inner: Mutex<Writer>,
}

struct Writer {
    out: BufWriter<File>,
    clock: ChromeClock,
    any: bool,
}

impl ChromeWriterSink {
    /// Create (truncate) `path` and write the array opener.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(b"[\n")?;
        Ok(ChromeWriterSink {
            inner: Mutex::new(Writer {
                out,
                clock: ChromeClock::default(),
                any: false,
            }),
        })
    }

    /// Flush buffered records to the file (the array stays open for more).
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().unwrap().out.flush()
    }
}

impl TraceSink for ChromeWriterSink {
    fn record(&self, record: Record) {
        let mut w = self.inner.lock().unwrap();
        let mut line = String::new();
        if w.any {
            line.push_str(",\n");
        }
        w.clock.write_record(&mut line, &record);
        w.any = true;
        // Best-effort: a full disk should not take the workload down.
        // Flush per record: the `FTK_TRACE` global sink lives in a static
        // that is never dropped, so buffered bytes would otherwise be lost
        // at process exit. Event volume is low (spans, not samples), so
        // one write syscall per record is cheap.
        let _ = w.out.write_all(line.as_bytes());
        let _ = w.out.flush();
    }
}

impl Drop for ChromeWriterSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.inner.lock() {
            let _ = w.out.write_all(b"\n]\n");
            let _ = w.out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_advances_the_track_clock() {
        let records = vec![
            Record {
                track: 0,
                event: TraceEvent::PhaseBegin {
                    phase: "assignment",
                    index: 0,
                },
            },
            Record {
                track: 0,
                event: TraceEvent::Launch {
                    label: "assign_naive",
                    grid: (8, 1, 1),
                    modeled_s: 2e-6,
                    fields: vec![("fma_ops", 64)],
                },
            },
            Record {
                track: 0,
                event: TraceEvent::PhaseEnd {
                    phase: "assignment",
                    index: 0,
                    fields: vec![("fma_ops", 64)],
                },
            },
        ];
        let json = chrome_json(&records);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        // Launch lasts 2 µs, so the phase end sits at ts=2.000.
        assert!(
            json.contains(r#""ph":"X","ts":0.000,"dur":2.000"#),
            "{json}"
        );
        assert!(json.contains(r#""ph":"E","ts":2.000"#), "{json}");
        assert!(json.contains(r#""grid":"(8,1,1)""#), "{json}");
    }
}
