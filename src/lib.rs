//! # ft-kmeans — facade crate
//!
//! Re-exports the public API of the FT K-means workspace (CLUSTER 2024
//! reproduction): the K-means estimator with algorithm-based fault
//! tolerance, the simulated-GPU substrate, the ABFT schemes, the fault
//! injector, the code-generation/auto-tuning layer and the synthetic
//! workload generators.
//!
//! ```
//! use ft_kmeans::gpu::DeviceProfile;
//! assert_eq!(DeviceProfile::a100().sm_count, 108);
//! ```
//!
//! The estimator lifecycle — build a [`Session`] once, derive estimators,
//! keep the [`FittedModel`]s:
//!
//! ```
//! use ft_kmeans::gpu::Matrix;
//! use ft_kmeans::{DeviceProfile, KMeansConfig, Session};
//!
//! let session = Session::new(DeviceProfile::a100());
//! let data = Matrix::<f64>::from_fn(48, 2, |r, c| (r % 2) as f64 * 9.0 + c as f64 * 0.1);
//! let model = session
//!     .kmeans(KMeansConfig::new(2).with_seed(7))
//!     .fit_model(&data)
//!     .unwrap();
//! assert_eq!(model.predict(&data).unwrap(), model.labels);
//! ```

/// Simulated-GPU substrate (devices, memory, MMA, timing model).
pub use gpu_sim as gpu;

/// ABFT checksum encodings, detection, location and correction.
pub use abft;

/// Transient-fault injection (SEU bit flips) and campaign statistics.
pub use fault;

/// Synthetic workload generators.
pub use data;

/// The K-means estimator and its kernel variants.
pub use kmeans;

/// Multi-tenant serving layer: model registry + micro-batching server.
pub use serve;

/// Kernel parameter space, feasibility, templates, tuner and selector.
pub use codegen;

/// Structured tracing and metrics: span-scoped launch telemetry, the phase
/// profiler, Chrome-trace export, and the Prometheus-style metric
/// primitives backing [`serve::Server::metrics_text`].
pub use trace;

pub use gpu_sim::{DeviceProfile, Precision};
pub use kmeans::{FittedModel, KMeans, KMeansConfig, KMeansError, Session};
pub use serve::{ModelRegistry, PredictResponse, ServeError, Server, ServerConfig};
pub use trace::{RecordingSink, TraceSink};
