//! Property-based tests over the core invariants (proptest).

use ft_kmeans::abft::checksum::ChecksumTriple;
use ft_kmeans::abft::{compare, correct_in_place, locate, Located, ThresholdPolicy};
use ft_kmeans::codegen::enumerate_params;
use ft_kmeans::gpu::matrix::gemm_abt_reference;
use ft_kmeans::gpu::mma::NoFault;
use ft_kmeans::gpu::timing::{estimate, GemmShape, KernelClass, TileConfig, TimingInput};
use ft_kmeans::gpu::{Counters, GlobalBuffer};
use ft_kmeans::gpu::{Matrix, Scalar};
use ft_kmeans::kmeans::device_data::DeviceData;
use ft_kmeans::kmeans::quant::{f16_bits_to_f32, f32_to_f16_bits, QuantKind, QuantizedCentroids};
use ft_kmeans::kmeans::reference::{assign_reference, update_reference};
use ft_kmeans::kmeans::update::centroid_drift;
use ft_kmeans::kmeans::variants::hamerly::{
    apply_drift, bound_policy, compute_s_half, hamerly_assign,
};
use ft_kmeans::kmeans::variants::naive::naive_assign;
use ft_kmeans::kmeans::variants::predict_fused::{predict_fused_assign, QueryView};
use ft_kmeans::kmeans::{KMeansConfig, Session, Variant};
use ft_kmeans::{DeviceProfile, Precision};
use proptest::prelude::*;

fn policy() -> ThresholdPolicy {
    ThresholdPolicy::for_precision(Precision::Fp64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rank-1 online accumulation equals direct tile checksums for any
    /// product (bilinearity — the algebra the whole scheme rests on).
    #[test]
    fn checksum_telescoping_holds(
        rows in 1usize..8,
        cols in 1usize..8,
        depth in 1usize..10,
        seed in 0u64..1000,
    ) {
        let a = Matrix::<f64>::from_fn(rows, depth, |r, c| {
            (((r * 31 + c * 17 + seed as usize) % 97) as f64 - 48.0) / 13.0
        });
        let b = Matrix::<f64>::from_fn(cols, depth, |r, c| {
            (((r * 13 + c * 29 + seed as usize) % 89) as f64 - 44.0) / 11.0
        });
        let c = gemm_abt_reference(&a, &b);
        let direct = ChecksumTriple::from_tile(c.as_slice(), rows, cols);
        let mut online = ChecksumTriple::<f64>::zero();
        for k in 0..depth {
            let a1: f64 = (0..rows).map(|i| a.get(i, k)).sum();
            let a2: f64 = (0..rows).map(|i| (i + 1) as f64 * a.get(i, k)).sum();
            let b1: f64 = (0..cols).map(|j| b.get(j, k)).sum();
            let b2: f64 = (0..cols).map(|j| (j + 1) as f64 * b.get(j, k)).sum();
            online.accumulate_rank1(a1, a2, b1, b2);
        }
        prop_assert!((online.s11 - direct.s11).abs() < 1e-8);
        prop_assert!((online.s21 - direct.s21).abs() < 1e-8);
        prop_assert!((online.s12 - direct.s12).abs() < 1e-8);
    }

    /// A single injected error of meaningful magnitude is always detected,
    /// located exactly, and corrected to within rounding.
    #[test]
    fn single_error_detect_locate_correct(
        rows in 1usize..9,
        cols in 1usize..9,
        row in 0usize..9,
        col in 0usize..9,
        magnitude in prop::sample::select(vec![0.5f64, -2.0, 17.0, -123.5, 1e4]),
        seed in 0u64..500,
    ) {
        let row = row % rows;
        let col = col % cols;
        let clean: Vec<f64> = (0..rows * cols)
            .map(|i| (((i * 37 + seed as usize) % 41) as f64 - 20.0) / 7.0)
            .collect();
        let reference = ChecksumTriple::from_tile(&clean, rows, cols);
        let mut acc = clean.clone();
        acc[row * cols + col] += magnitude;
        let observed = ChecksumTriple::from_tile(&acc, rows, cols);
        let disc = compare(&observed, &reference, &policy());
        prop_assert!(disc.is_some(), "error of {magnitude} must be detected");
        let disc = disc.unwrap();
        match locate(&disc, rows, cols) {
            Located::At { row: r, col: c } => {
                prop_assert_eq!((r, c), (row, col));
                correct_in_place(&mut acc, cols, r, c, disc.d);
                for (x, y) in acc.iter().zip(clean.iter()) {
                    prop_assert!((x - y).abs() < 1e-6);
                }
            }
            Located::Ambiguous => prop_assert!(false, "single error must locate"),
        }
    }

    /// Clean tiles never raise an alarm (no false positives), regardless of
    /// data.
    #[test]
    fn no_false_positives(
        rows in 1usize..9,
        cols in 1usize..9,
        scale in prop::sample::select(vec![1e-3f64, 1.0, 1e3, 1e6]),
        seed in 0u64..500,
    ) {
        let tile: Vec<f64> = (0..rows * cols)
            .map(|i| (((i * 53 + seed as usize) % 71) as f64 - 35.0) * scale)
            .collect();
        let t = ChecksumTriple::from_tile(&tile, rows, cols);
        prop_assert!(compare(&t, &t.clone(), &policy()).is_none());
    }

    /// Bit flips roundtrip for all positions and values.
    #[test]
    fn bit_flip_involution(v in prop::num::f64::ANY, bit in 0u32..64) {
        let flipped = v.flip_bit(bit);
        prop_assert_eq!(flipped.flip_bit(bit).to_bits(), v.to_bits());
        if v.is_finite() && bit != 63 {
            prop_assert_ne!(flipped.to_bits(), v.to_bits());
        }
    }

    /// Every enumerated kernel parameter group obeys the paper's rules.
    #[test]
    fn enumeration_rules_always_hold(fp64 in proptest::bool::ANY) {
        let precision = if fp64 { Precision::Fp64 } else { Precision::Fp32 };
        for p in enumerate_params(precision) {
            prop_assert!(p.threadblock.m.is_power_of_two());
            prop_assert!(p.threadblock.n.is_power_of_two());
            prop_assert_eq!(p.warp.k, p.threadblock.k);
            prop_assert_eq!(p.threadblock.m % p.warp.m, 0);
            prop_assert_eq!(p.threadblock.n % p.warp.n, 0);
            let ratio = (p.warp.m * p.warp.n) / (p.thread.m * p.thread.n);
            prop_assert!(ratio == 8 || ratio == 16);
        }
    }

    /// Timing model sanity: feasible configs give positive finite times,
    /// and more work never takes less time on the same config.
    #[test]
    fn timing_monotone_in_problem_size(
        mexp in 10usize..17,
        n in 1usize..512,
        k in 1usize..256,
    ) {
        let dev = DeviceProfile::a100();
        let tile = TileConfig { tb_m: 64, tb_n: 64, tb_k: 16, wm: 32, wn: 32, k_stages: 3 };
        let m = 1 << mexp;
        let t1 = estimate(&TimingInput::plain(
            &dev, Precision::Fp32, KernelClass::Tensor(tile), GemmShape::new(m, n, k),
        ));
        let t2 = estimate(&TimingInput::plain(
            &dev, Precision::Fp32, KernelClass::Tensor(tile), GemmShape::new(2 * m, n, k),
        ));
        prop_assert!(t1.feasible && t2.feasible);
        prop_assert!(t1.time_s.is_finite() && t1.time_s > 0.0);
        prop_assert!(t2.time_s >= t1.time_s, "double the samples cannot be faster");
    }

    /// Reference assignment: the reported distance is the true minimum.
    #[test]
    fn reference_assignment_is_argmin(
        m in 1usize..30,
        k in 1usize..10,
        dim in 1usize..6,
        seed in 0u64..200,
    ) {
        let samples = Matrix::<f64>::from_fn(m, dim, |r, c| {
            (((r * 7 + c * 3 + seed as usize) % 23) as f64 - 11.0) / 3.0
        });
        let cents = Matrix::<f64>::from_fn(k, dim, |r, c| {
            (((r * 11 + c * 5 + seed as usize) % 19) as f64 - 9.0) / 3.0
        });
        let (labels, dists) = assign_reference(&samples, &cents);
        for i in 0..m {
            for j in 0..k {
                let d: f64 = (0..dim)
                    .map(|dd| (samples.get(i, dd) - cents.get(j, dd)).powi(2))
                    .sum();
                prop_assert!(dists[i] <= d + 1e-12, "sample {i}: {} > {d}", dists[i]);
            }
            prop_assert!((labels[i] as usize) < k);
        }
    }

    /// Centroid update: means weighted by counts reproduce the total mass.
    #[test]
    fn update_conserves_mass(
        m in 1usize..40,
        k in 1usize..6,
        seed in 0u64..200,
    ) {
        let dim = 3;
        let samples = Matrix::<f64>::from_fn(m, dim, |r, c| {
            (((r * 13 + c + seed as usize) % 31) as f64 - 15.0) / 4.0
        });
        let labels: Vec<u32> = (0..m).map(|i| ((i * 7 + seed as usize) % k) as u32).collect();
        let old = Matrix::<f64>::zeros(k, dim);
        let (new_c, counts) = update_reference(&samples, &labels, &old);
        for d in 0..dim {
            let total: f64 = (0..m).map(|i| samples.get(i, d)).sum();
            let reconstructed: f64 =
                (0..k).map(|c| new_c.get(c, d) * counts[c] as f64).sum();
            prop_assert!((total - reconstructed).abs() < 1e-9);
        }
        prop_assert_eq!(counts.iter().sum::<u32>() as usize, m);
    }
}

/// Euclidean distance between sample row `i` and centroid row `j`.
fn row_dist(samples: &Matrix<f64>, i: usize, cents: &Matrix<f64>, j: usize) -> f64 {
    (0..samples.cols())
        .map(|d| (samples.get(i, d) - cents.get(j, d)).powi(2))
        .sum::<f64>()
        .max(0.0)
        .sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hamerly's resident bounds stay sound under *any* centroid-drift
    /// sequence, run through the driver's exact bookkeeping (drift kernel →
    /// centroid refresh → s_half → apply_drift): the upper bound never falls
    /// below the distance to the assigned centroid, the lower bound never
    /// rises above the closest *other* centroid (both within the policy's
    /// FP slack), and the next pruned pass still returns exactly the naive
    /// kernel's labels.
    #[test]
    fn hamerly_bounds_survive_any_drift_sequence(
        m in 4usize..40,
        k in 2usize..6,
        dim in 1usize..6,
        seed in 0u64..200,
        drifts in prop::collection::vec(
            (0usize..1000, prop::sample::select(vec![0.0f64, 0.05, 0.5, 3.0])),
            1..4,
        ),
    ) {
        let dev = DeviceProfile::a100();
        let c = Counters::new();
        let samples = Matrix::<f64>::from_fn(m, dim, |r, cc| {
            (((r * 7 + cc * 3 + seed as usize) % 23) as f64 - 11.0) / 3.0
        });
        let mut cents = Matrix::<f64>::from_fn(k, dim, |r, cc| {
            (((r * 11 + cc * 5 + seed as usize) % 19) as f64 - 9.0) / 3.0
        });
        let mut data = DeviceData::upload(&dev, &samples, &cents, &c).unwrap();
        data.ensure_bounds();
        compute_s_half(&dev, &data, &c).unwrap();
        hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
        let policy = bound_policy::<f64>(dim);

        for (jseed, mag) in drifts {
            let next = Matrix::<f64>::from_fn(k, dim, |r, cc| {
                cents.get(r, cc)
                    + mag * ((((r * 31 + cc * 17 + jseed) % 13) as f64 - 6.0) / 6.0)
            });
            let old_buf = GlobalBuffer::from_matrix(&cents);
            data.refresh_centroids(&dev, &next, &c).unwrap();
            let b = data.bounds.as_ref().unwrap();
            let max_drift =
                centroid_drift(&dev, &old_buf, &data.centroids, k, dim, &b.drift, &c).unwrap();
            compute_s_half(&dev, &data, &c).unwrap();
            apply_drift(&dev, &data, max_drift, &c).unwrap();
            cents = next;

            let b = data.bounds.as_ref().unwrap();
            for i in 0..m {
                let a = b.labels.load(i) as usize;
                let d_assigned = row_dist(&samples, i, &cents, a);
                prop_assert!(
                    !policy.upper_violates(b.upper.load(i), d_assigned),
                    "sample {i}: upper {} below assigned distance {d_assigned}",
                    b.upper.load(i),
                );
                let mut d_other = f64::INFINITY;
                for j in (0..k).filter(|&j| j != a) {
                    d_other = d_other.min(row_dist(&samples, i, &cents, j));
                }
                prop_assert!(
                    !policy.lower_violates(b.lower.load(i), d_other),
                    "sample {i}: lower {} above closest-other distance {d_other}",
                    b.lower.load(i),
                );
            }

            // The pruned pass after the drift agrees with the naive kernel
            // bit-for-bit on labels — the slack absorbed every rounding.
            let want = naive_assign(&dev, &data, &NoFault, &c).unwrap();
            let got = hamerly_assign(&dev, &data, false, &NoFault, &c).unwrap();
            prop_assert_eq!(got.labels, want.labels);
        }
    }

    /// int8 quantize→dequantize round-trip stays within the advertised
    /// half-scale bound for adversarial per-centroid magnitudes — tiny,
    /// huge, and mixed within one table.
    #[test]
    fn int8_roundtrip_error_within_half_scale(
        k in 1usize..5,
        dim in 1usize..12,
        seed in 0u64..500,
        mags in prop::collection::vec(
            prop::sample::select(vec![1e-30f64, 1e-6, 1.0, 1e6, 1e30]),
            1..5,
        ),
    ) {
        let cents = Matrix::<f64>::from_fn(k, dim, |r, c| {
            let base = (((r * 31 + c * 7 + seed as usize) % 201) as f64 - 100.0) / 100.0;
            base * mags[(r * 13 + c) % mags.len()]
        });
        let buf = GlobalBuffer::from_matrix(&cents);
        let t = QuantizedCentroids::build(&buf, k, dim, QuantKind::Int8);
        let counters = Counters::new();
        let (mut deq, mut qn, mut sc) =
            (vec![0.0f64; k * dim], vec![0.0f64; k], vec![0.0f64; k]);
        t.stage_dequantized(&mut deq, &mut qn, &mut sc, &counters);
        for j in 0..k {
            // advertised bound: |v − v̂| ≤ scale/2 up to representation
            // rounding (0.51 covers the slop with margin)
            let bound = sc[j] * 0.51;
            let mut err_sq = 0.0f64;
            for d in 0..dim {
                let err = (cents.get(j, d) - deq[j * dim + d]).abs();
                prop_assert!(err <= bound, "row {j} elem {d}: err {err} > {bound}");
                err_sq += err * err;
            }
            // the cached displacement metadata is the exact row error
            prop_assert!((t.err_norms[j] - err_sq.sqrt()).abs() <= 1e-12 * err_sq.sqrt().max(1.0));
        }
    }

    /// fp16 round-trip honors the advertised relative bound inside the
    /// representable range and saturates (never overflows to ∞) outside it.
    #[test]
    fn fp16_roundtrip_error_within_advertised_bound(
        v in -66000.0f64..66000.0,
        scale in prop::sample::select(vec![1e-8f64, 1e-4, 1.0]),
    ) {
        let x = v * scale;
        let back = f16_bits_to_f32(f32_to_f16_bits(x as f32)) as f64;
        prop_assert!(back.is_finite());
        if x.abs() <= 65504.0 {
            // f32 narrowing (2⁻²³ rel) + f16 rounding (2⁻¹¹ rel) +
            // subnormal absolute floor (2⁻²⁴)
            let bound = x.abs() * (2f64.powi(-11) + 2f64.powi(-23)) + 2f64.powi(-24);
            prop_assert!((back - x).abs() <= bound, "{x}: {back} off by {}", (back - x).abs());
        } else {
            prop_assert_eq!(back.abs(), 65504.0, "finite overflow saturates");
            prop_assert_eq!(back.signum(), x.signum());
        }
    }

    /// The serving path's exactness invariant under adversarial magnitudes:
    /// whatever the data scale mix, fused quantized predict returns exactly
    /// the naive kernel's labels and distances (the margin policy must
    /// reject any sample quantization could mislabel).
    #[test]
    fn quantized_predict_labels_always_exact(
        m in 1usize..40,
        k in 1usize..7,
        dim in 1usize..9,
        seed in 0u64..300,
        mag in prop::sample::select(vec![1e-20f64, 1e-3, 1.0, 1e5, 1e18]),
    ) {
        let dev = DeviceProfile::a100();
        let counters = Counters::new();
        let samples = Matrix::<f64>::from_fn(m, dim, |r, c| {
            mag * ((((r * 7 + c * 3 + seed as usize) % 23) as f64 - 11.0) / 3.0)
        });
        let cents = Matrix::<f64>::from_fn(k, dim, |r, c| {
            mag * ((((r * 11 + c * 5 + seed as usize) % 19) as f64 - 9.0) / 3.0)
        });
        let data = DeviceData::upload(&dev, &samples, &cents, &counters).unwrap();
        let want = naive_assign(&dev, &data, &NoFault, &counters).unwrap();
        for kind in [QuantKind::Fp16, QuantKind::Int8] {
            let table = QuantizedCentroids::build(&data.centroids, k, dim, kind);
            let got = predict_fused_assign(
                &dev,
                QueryView {
                    samples: &data.samples,
                    centroids: &data.centroids,
                    m,
                    k,
                    dim,
                },
                &table,
                &counters,
            )
            .unwrap();
            prop_assert_eq!(&got.labels, &want.labels, "{:?} labels", kind);
            for (a, b) in got.distances.iter().zip(want.distances.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?} distances", kind);
            }
        }
    }

    /// On fault-free fits the periodic revalidation is a pure no-op
    /// whatever the cadence: sweeps run (the final iteration always checks
    /// the whole population) but never find a violation, so nothing is
    /// detected and no forced recompute is charged.
    #[test]
    fn hamerly_revalidation_is_noop_on_fault_free_fits(
        m in 16usize..96,
        k in 2usize..6,
        dim in 1usize..5,
        seed in 0u64..100,
        every in 1usize..4,
        max_iter in 1usize..7,
    ) {
        let samples = Matrix::<f64>::from_fn(m, dim, |r, c| {
            (((r * 13 + c * 7 + seed as usize) % 29) as f64 - 14.0) / 3.0
        });
        let session = Session::a100();
        let mut cfg = KMeansConfig {
            k,
            max_iter,
            tol: 0.0,
            seed,
            variant: Variant::Hamerly,
            ..Default::default()
        };
        cfg.ft.revalidate_every = every;
        let fit = session.kmeans(cfg).fit(&samples).unwrap();
        prop_assert!(
            fit.ft_stats.clean_sweeps >= 1,
            "the final-iteration full sweep always runs"
        );
        prop_assert_eq!(fit.ft_stats.detected, 0);
        prop_assert_eq!(fit.ft_stats.recomputed, 0);
    }
}
