//! Integration of the code-generation layer with the K-means estimator:
//! tuned tiles flow from the selector into functional kernels and behave.

use ft_kmeans::codegen::feasibility::stages_for;
use ft_kmeans::codegen::tuner::ShapeGrid;
use ft_kmeans::codegen::{KernelParams, KernelSelector};
use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::gpu::timing::{estimate, FtMode, GemmShape, KernelClass, TimingInput};
use ft_kmeans::kmeans::{KMeans, KMeansConfig, Variant};
use ft_kmeans::{DeviceProfile, Precision, Session};

fn small_grid() -> ShapeGrid {
    ShapeGrid {
        m: 131_072,
        dims: vec![8, 32, 64, 128],
        clusters: vec![8, 64, 128, 256],
    }
}

#[test]
fn selected_tile_runs_functionally_and_matches_default() {
    let dev = DeviceProfile::a100();
    let selector = KernelSelector::build_with_grid(&dev, Precision::Fp32, &small_grid());
    let (data, _, _) = make_blobs::<f32>(&BlobSpec {
        samples: 1024,
        dim: 32,
        centers: 16,
        cluster_std: 0.4,
        center_box: 6.0,
        seed: 2,
    });
    let chosen = selector.select(16, 32);
    let tile = chosen.tile_config(stages_for(&dev));
    let cfg_sel = KMeansConfig {
        k: 16,
        max_iter: 6,
        tol: 0.0,
        seed: 3,
        variant: Variant::Tensor(Some(tile)),
        ..Default::default()
    };
    let cfg_def = KMeansConfig {
        variant: Variant::Tensor(None),
        ..cfg_sel.clone()
    };
    let a = KMeans::new(dev.clone(), cfg_sel)
        .fit(&data)
        .expect("selected tile fit");
    let b = KMeans::new(dev, cfg_def)
        .fit(&data)
        .expect("default tile fit");
    assert_eq!(
        a.labels, b.labels,
        "tiling is a performance knob, not a semantic one"
    );
}

#[test]
fn selector_choice_dominates_cuml_in_model_across_grid() {
    let dev = DeviceProfile::a100();
    for precision in Precision::all() {
        let selector = KernelSelector::build_with_grid(&dev, precision, &small_grid());
        let stages = stages_for(&dev);
        let cuml = KernelParams::cuml(precision).tile_config(stages);
        for &(clusters, dim) in &[(8usize, 8usize), (8, 128), (128, 8), (256, 64)] {
            let choice = selector.select(clusters, dim).tile_config(stages);
            let shape = GemmShape::new(131_072, clusters, dim);
            let t_sel = estimate(&TimingInput::plain(
                &dev,
                precision,
                KernelClass::Tensor(choice),
                shape,
            ));
            let t_cuml = estimate(&TimingInput::plain(
                &dev,
                precision,
                KernelClass::Tensor(cuml),
                shape,
            ));
            assert!(
                t_sel.gflops >= t_cuml.gflops * 0.98,
                "{precision} K={clusters} N={dim}: selector {:.0} vs cuML {:.0}",
                t_sel.gflops,
                t_cuml.gflops
            );
        }
    }
}

#[test]
fn selector_text_roundtrip_preserves_choices() {
    let dev = DeviceProfile::t4();
    let selector = KernelSelector::build_with_grid(&dev, Precision::Fp32, &small_grid());
    let text = selector.to_text();
    let back = KernelSelector::from_text(&text).expect("parse");
    for &(clusters, dim) in &[(8usize, 16usize), (128, 64), (500, 100)] {
        assert_eq!(
            selector.select(clusters, dim),
            back.select(clusters, dim),
            "K={clusters} N={dim}"
        );
    }
}

#[test]
fn session_selector_persists_and_feeds_a_functional_fit() {
    // The estimator-lifecycle face of selector persistence: a session tunes
    // once, writes the cache, and a second session reuses the file; the
    // tuned tile is functionally interchangeable with the default.
    let dir = std::env::temp_dir().join(format!("ftk-selector-integration-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let session = Session::new(DeviceProfile::a100()).with_selector_cache(&dir);
    let tile = session.tuned_tile(Precision::Fp32, 16, 32);

    // second session: must load the persisted table, not re-tune a
    // different one
    let session2 = Session::new(DeviceProfile::a100()).with_selector_cache(&dir);
    assert_eq!(session2.tuned_tile(Precision::Fp32, 16, 32), tile);
    assert!(
        std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0) >= 1,
        "tuning must have persisted at least one table under {dir:?}"
    );

    let (data, _, _) = make_blobs::<f32>(&BlobSpec {
        samples: 1024,
        dim: 32,
        centers: 16,
        cluster_std: 0.4,
        center_box: 6.0,
        seed: 2,
    });
    let tuned = session
        .kmeans(
            KMeansConfig::new(16)
                .with_seed(3)
                .with_variant(Variant::Tensor(Some(tile))),
        )
        .fit_model(&data)
        .expect("tuned-tile fit");
    let default = session
        .kmeans(KMeansConfig::new(16).with_seed(3))
        .fit_model(&data)
        .expect("default-tile fit");
    assert_eq!(tuned.labels, default.labels, "tiling is a perf knob only");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ft_mode_timing_consistency_for_selected_tiles() {
    // FT never makes the selected kernel faster; the overhead stays within
    // the paper's envelope for FP32.
    let dev = DeviceProfile::a100();
    let selector = KernelSelector::build_with_grid(&dev, Precision::Fp32, &small_grid());
    let stages = stages_for(&dev);
    for &(clusters, dim) in &[(8usize, 64usize), (128, 128)] {
        let tile = selector.select(clusters, dim).tile_config(stages);
        let shape = GemmShape::new(131_072, clusters, dim);
        let plain = estimate(&TimingInput::plain(
            &dev,
            Precision::Fp32,
            KernelClass::Tensor(tile),
            shape,
        ));
        let ft = estimate(&TimingInput {
            ft: FtMode::FtKMeans,
            ..TimingInput::plain(&dev, Precision::Fp32, KernelClass::Tensor(tile), shape)
        });
        let overhead = ft.time_s / plain.time_s - 1.0;
        assert!(
            (0.0..0.12).contains(&overhead),
            "FP32 FT overhead at K={clusters} N={dim}: {:.2}%",
            overhead * 100.0
        );
    }
}
