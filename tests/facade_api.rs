//! Facade surface test: every re-export advertised by `ft_kmeans` must
//! resolve, and the happy path — construct a config, fit a tiny dataset —
//! must work through the facade alone (no direct workspace-crate deps).

use ft_kmeans::abft::ChecksumTriple;
use ft_kmeans::codegen::enumerate_params;
use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::fault::InjectionSchedule;
use ft_kmeans::gpu::Matrix;
use ft_kmeans::kmeans::Variant;
use ft_kmeans::{DeviceProfile, KMeans, KMeansConfig, KMeansError, Precision, Session};

#[test]
fn all_module_reexports_resolve() {
    // One item per re-exported module proves the path is wired.
    let dev: DeviceProfile = ft_kmeans::gpu::DeviceProfile::a100();
    assert_eq!(dev.sm_count, 108);

    let t = ChecksumTriple::<f64>::zero();
    assert_eq!(t.s11, 0.0);

    assert!(matches!(InjectionSchedule::Off, InjectionSchedule::Off));

    let m = Matrix::<f32>::zeros(2, 3);
    assert_eq!((m.rows(), m.cols()), (2, 3));

    assert!(
        !enumerate_params(Precision::Fp32).is_empty(),
        "codegen must enumerate at least one kernel parameter set"
    );
}

#[test]
fn kmeans_constructs_and_fits_tiny_blobs() {
    let spec = BlobSpec {
        samples: 60,
        dim: 4,
        centers: 3,
        cluster_std: 0.2,
        center_box: 5.0,
        seed: 3,
    };
    let (data, _truth, _centers) = make_blobs::<f64>(&spec);

    let km = KMeans::new(
        DeviceProfile::a100(),
        KMeansConfig::new(3)
            .with_variant(Variant::Tensor(None))
            .with_seed(11),
    );
    let fit = km.fit(&data).expect("fit through the facade");
    assert_eq!(fit.labels.len(), 60);
    assert!(fit.iterations >= 1);
    assert!(fit.inertia.is_finite() && fit.inertia >= 0.0);
    // returned triple is self-consistent (the invariant PR 1 repaired)
    let check = ft_kmeans::kmeans::metrics::inertia(&data, &fit.centroids, &fit.labels);
    assert!((check - fit.inertia).abs() <= 1e-9 * check.max(1.0));
}

#[test]
fn session_lifecycle_flows_through_the_facade() {
    let (data, _, _) = make_blobs::<f64>(&BlobSpec {
        samples: 80,
        dim: 4,
        centers: 2,
        cluster_std: 0.2,
        center_box: 5.0,
        seed: 9,
    });
    let session = Session::new(DeviceProfile::a100());
    let km = session.kmeans(KMeansConfig::new(2).with_seed(4));

    // session path: fit -> model -> predict/score without re-upload
    let model = km.fit_model(&data).expect("fit_model");
    assert_eq!(model.predict(&data).expect("predict"), model.labels);
    let score = model.score(&data).expect("score");
    assert!((score - model.inertia).abs() <= 1e-9 * model.inertia.max(1.0));

    // warm start continues from the model
    let warm = km.fit_from(&model, &data).expect("fit_from");
    assert_eq!(warm.labels, model.labels);

    // streaming path accumulates batches
    let stream = km.partial_fit(None, &data).expect("first batch");
    let stream = km.partial_fit(Some(stream), &data).expect("second batch");
    assert_eq!(stream.batches_seen(), 2);
    assert_eq!(stream.center_weights().iter().sum::<u64>(), 160);
}

#[test]
fn typed_errors_surface_through_the_facade() {
    let session = Session::new(DeviceProfile::a100());
    let data = Matrix::<f32>::zeros(4, 2);
    match session.kmeans(KMeansConfig::new(9)).fit_model(&data) {
        Err(KMeansError::InvalidConfig { field: "k", reason }) => {
            assert!(
                reason.contains('4'),
                "reason cites the sample count: {reason}"
            );
        }
        other => panic!("expected InvalidConfig(k): {other:?}"),
    }
}
