//! Cross-crate fault-injection campaigns: every scheme, both precisions,
//! sustained barrages — the integration-level version of the paper's §V-C.

use ft_kmeans::abft::SchemeKind;
use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::fault::InjectionSchedule;
use ft_kmeans::gpu::{Matrix, Scalar};
use ft_kmeans::kmeans::{FittedModel, FtConfig, KMeansConfig, Variant};
use ft_kmeans::{DeviceProfile, Session};

fn blobs<T: Scalar>(m: usize, dim: usize, k: usize, seed: u64) -> Matrix<T> {
    let (data, _, _) = make_blobs::<T>(&BlobSpec {
        samples: m,
        dim,
        centers: k,
        cluster_std: 0.3,
        center_box: 7.0,
        seed,
    });
    data
}

fn run<T: Scalar>(
    device: &DeviceProfile,
    data: &Matrix<T>,
    k: usize,
    scheme: SchemeKind,
    injection: InjectionSchedule,
    seed: u64,
) -> FittedModel<T> {
    let cfg = KMeansConfig {
        k,
        max_iter: 5,
        tol: 0.0,
        seed,
        variant: Variant::Tensor(None),
        ft: FtConfig {
            scheme,
            dmr_update: true,
            injection,
            injection_seed: seed * 13 + 1,
            ..Default::default()
        },
        ..Default::default()
    };
    // session path: result fields read through the model's Deref
    Session::new(device.clone())
        .kmeans(cfg)
        .fit_model(data)
        .expect("fit")
}

#[test]
fn ftkmeans_scheme_absorbs_sustained_barrage_fp64() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(1024, 24, 8, 1);
    let clean = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        InjectionSchedule::Off,
        4,
    );
    let hit = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        InjectionSchedule::PerBlock { probability: 0.7 },
        4,
    );
    assert!(
        hit.injected >= 10,
        "barrage expected, injected {}",
        hit.injected
    );
    assert_eq!(hit.labels, clean.labels);
    assert!((hit.inertia - clean.inertia).abs() / clean.inertia < 1e-9);
    assert!(hit.ft_stats.handled() + hit.dmr.mismatches > 0);
}

#[test]
fn kosaian_scheme_recovers_by_recomputation_fp64() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(768, 16, 6, 2);
    let clean = run(
        &dev,
        &data,
        6,
        SchemeKind::Kosaian,
        InjectionSchedule::Off,
        9,
    );
    let hit = run(
        &dev,
        &data,
        6,
        SchemeKind::Kosaian,
        InjectionSchedule::PerBlock { probability: 0.8 },
        9,
    );
    assert!(hit.injected > 0);
    assert_eq!(
        hit.labels, clean.labels,
        "recompute-based correction must restore the result"
    );
    // Detection-only: every handled distance-kernel fault shows up as a
    // recomputation, never as an in-place correction.
    assert_eq!(hit.ft_stats.corrected, 0);
}

#[test]
fn wu_scheme_corrects_at_block_level_fp64() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(768, 16, 6, 3);
    let clean = run(&dev, &data, 6, SchemeKind::Wu, InjectionSchedule::Off, 10);
    let hit = run(
        &dev,
        &data,
        6,
        SchemeKind::Wu,
        InjectionSchedule::PerBlock { probability: 0.8 },
        10,
    );
    assert!(hit.injected > 0);
    assert_eq!(hit.labels, clean.labels);
    // Wu on Ampere must have paid re-read traffic for its checksums.
    assert!(
        hit.counters.ft_extra_loads > 0,
        "cp.async forces Wu to re-read operands"
    );
}

#[test]
fn wu_reread_traffic_absent_on_turing() {
    let dev = DeviceProfile::t4();
    let data = blobs::<f64>(512, 16, 4, 4);
    let fit = run(&dev, &data, 4, SchemeKind::Wu, InjectionSchedule::Off, 3);
    assert_eq!(
        fit.counters.ft_extra_loads, 0,
        "register-staged copies make Wu's checksums free on Turing"
    );
}

#[test]
fn unprotected_runs_are_actually_damaged_fp64() {
    // Negative control: if injection never changed anything, the FT tests
    // above would be vacuous.
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(1024, 24, 8, 5);
    let clean = run(&dev, &data, 8, SchemeKind::None, InjectionSchedule::Off, 6);
    let mut damaged_any = false;
    for seed in [6, 7, 8] {
        let cfg = KMeansConfig {
            k: 8,
            max_iter: 5,
            tol: 0.0,
            seed: 6,
            variant: Variant::Tensor(None),
            ft: FtConfig {
                scheme: SchemeKind::None,
                dmr_update: false,
                injection: InjectionSchedule::PerBlock { probability: 0.9 },
                injection_seed: seed * 101,
                ..Default::default()
            },
            ..Default::default()
        };
        let hit = Session::new(dev.clone())
            .kmeans(cfg)
            .fit_model(&data)
            .expect("fit");
        if hit.labels != clean.labels || (hit.inertia - clean.inertia).abs() / clean.inertia > 1e-12
        {
            damaged_any = true;
        }
    }
    assert!(
        damaged_any,
        "a heavy unprotected barrage should corrupt at least one of three runs"
    );
}

#[test]
fn rate_schedule_converts_to_visible_injections() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f32>(2048, 16, 8, 6);
    let hit = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        // absurd rate so the per-launch probability saturates
        InjectionSchedule::Rate {
            errors_per_second: 1e9,
        },
        12,
    );
    assert!(hit.injected > 0, "rate schedule must inject");
}

#[test]
fn fp32_campaign_preserves_quality() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f32>(1024, 16, 8, 7);
    let clean = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        InjectionSchedule::Off,
        5,
    );
    let hit = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        InjectionSchedule::PerBlock { probability: 0.5 },
        5,
    );
    assert!(hit.injected > 0);
    let agree = clean
        .labels
        .iter()
        .zip(&hit.labels)
        .filter(|(a, b)| a == b)
        .count() as f64
        / clean.labels.len() as f64;
    assert!(agree > 0.99, "label agreement {agree}");
    assert!((hit.inertia - clean.inertia).abs() / clean.inertia < 1e-2);
}

#[test]
fn dmr_protects_update_phase_under_targeted_storm() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(512, 8, 4, 8);
    let clean = run(
        &dev,
        &data,
        4,
        SchemeKind::FtKMeans,
        InjectionSchedule::Off,
        21,
    );
    let hit = run(
        &dev,
        &data,
        4,
        SchemeKind::FtKMeans,
        InjectionSchedule::PerBlock { probability: 1.0 },
        21,
    );
    assert_eq!(hit.labels, clean.labels);
    assert!(
        hit.dmr.mismatches > 0,
        "a probability-1 storm must hit the update phase at least once"
    );
    assert_eq!(
        hit.dmr.unresolved, 0,
        "SEU faults always resolve by majority"
    );
}
