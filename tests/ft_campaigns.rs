//! Cross-crate fault-injection campaigns: every scheme, both precisions,
//! sustained barrages — the integration-level version of the paper's §V-C.

use ft_kmeans::abft::SchemeKind;
use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::fault::InjectionSchedule;
use ft_kmeans::gpu::exec::{with_executor, Executor};
use ft_kmeans::gpu::mma::NoFault;
use ft_kmeans::gpu::{Counters, GlobalBuffer, Matrix, Scalar};
use ft_kmeans::kmeans::device_data::DeviceData;
use ft_kmeans::kmeans::reference::{assign_reference, update_reference};
use ft_kmeans::kmeans::update::centroid_drift;
use ft_kmeans::kmeans::variants::hamerly::{
    apply_drift, compute_s_half, hamerly_assign, revalidate,
};
use ft_kmeans::kmeans::variants::naive::naive_assign;
use ft_kmeans::kmeans::{FittedModel, FtConfig, KMeansConfig, Variant};
use ft_kmeans::{DeviceProfile, Session};

fn blobs<T: Scalar>(m: usize, dim: usize, k: usize, seed: u64) -> Matrix<T> {
    let (data, _, _) = make_blobs::<T>(&BlobSpec {
        samples: m,
        dim,
        centers: k,
        cluster_std: 0.3,
        center_box: 7.0,
        seed,
    });
    data
}

fn run<T: Scalar>(
    device: &DeviceProfile,
    data: &Matrix<T>,
    k: usize,
    scheme: SchemeKind,
    injection: InjectionSchedule,
    seed: u64,
) -> FittedModel<T> {
    let cfg = KMeansConfig {
        k,
        max_iter: 5,
        tol: 0.0,
        seed,
        variant: Variant::Tensor(None),
        ft: FtConfig {
            scheme,
            dmr_update: true,
            injection,
            injection_seed: seed * 13 + 1,
            ..Default::default()
        },
        ..Default::default()
    };
    // session path: result fields read through the model's Deref
    Session::new(device.clone())
        .kmeans(cfg)
        .fit_model(data)
        .expect("fit")
}

#[test]
fn ftkmeans_scheme_absorbs_sustained_barrage_fp64() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(1024, 24, 8, 1);
    let clean = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        InjectionSchedule::Off,
        4,
    );
    let hit = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        InjectionSchedule::PerBlock { probability: 0.7 },
        4,
    );
    assert!(
        hit.injected >= 10,
        "barrage expected, injected {}",
        hit.injected
    );
    assert_eq!(hit.labels, clean.labels);
    assert!((hit.inertia - clean.inertia).abs() / clean.inertia < 1e-9);
    assert!(hit.ft_stats.handled() + hit.dmr.mismatches > 0);
}

#[test]
fn kosaian_scheme_recovers_by_recomputation_fp64() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(768, 16, 6, 2);
    let clean = run(
        &dev,
        &data,
        6,
        SchemeKind::Kosaian,
        InjectionSchedule::Off,
        9,
    );
    let hit = run(
        &dev,
        &data,
        6,
        SchemeKind::Kosaian,
        InjectionSchedule::PerBlock { probability: 0.8 },
        9,
    );
    assert!(hit.injected > 0);
    assert_eq!(
        hit.labels, clean.labels,
        "recompute-based correction must restore the result"
    );
    // Detection-only: every handled distance-kernel fault shows up as a
    // recomputation, never as an in-place correction.
    assert_eq!(hit.ft_stats.corrected, 0);
}

#[test]
fn wu_scheme_corrects_at_block_level_fp64() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(768, 16, 6, 3);
    let clean = run(&dev, &data, 6, SchemeKind::Wu, InjectionSchedule::Off, 10);
    let hit = run(
        &dev,
        &data,
        6,
        SchemeKind::Wu,
        InjectionSchedule::PerBlock { probability: 0.8 },
        10,
    );
    assert!(hit.injected > 0);
    assert_eq!(hit.labels, clean.labels);
    // Wu on Ampere must have paid re-read traffic for its checksums.
    assert!(
        hit.counters.ft_extra_loads > 0,
        "cp.async forces Wu to re-read operands"
    );
}

#[test]
fn wu_reread_traffic_absent_on_turing() {
    let dev = DeviceProfile::t4();
    let data = blobs::<f64>(512, 16, 4, 4);
    let fit = run(&dev, &data, 4, SchemeKind::Wu, InjectionSchedule::Off, 3);
    assert_eq!(
        fit.counters.ft_extra_loads, 0,
        "register-staged copies make Wu's checksums free on Turing"
    );
}

#[test]
fn unprotected_runs_are_actually_damaged_fp64() {
    // Negative control: if injection never changed anything, the FT tests
    // above would be vacuous.
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(1024, 24, 8, 5);
    let clean = run(&dev, &data, 8, SchemeKind::None, InjectionSchedule::Off, 6);
    let mut damaged_any = false;
    for seed in [6, 7, 8] {
        let cfg = KMeansConfig {
            k: 8,
            max_iter: 5,
            tol: 0.0,
            seed: 6,
            variant: Variant::Tensor(None),
            ft: FtConfig {
                scheme: SchemeKind::None,
                dmr_update: false,
                injection: InjectionSchedule::PerBlock { probability: 0.9 },
                injection_seed: seed * 101,
                ..Default::default()
            },
            ..Default::default()
        };
        let hit = Session::new(dev.clone())
            .kmeans(cfg)
            .fit_model(&data)
            .expect("fit");
        if hit.labels != clean.labels || (hit.inertia - clean.inertia).abs() / clean.inertia > 1e-12
        {
            damaged_any = true;
        }
    }
    assert!(
        damaged_any,
        "a heavy unprotected barrage should corrupt at least one of three runs"
    );
}

#[test]
fn rate_schedule_converts_to_visible_injections() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f32>(2048, 16, 8, 6);
    let hit = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        // absurd rate so the per-launch probability saturates
        InjectionSchedule::Rate {
            errors_per_second: 1e9,
        },
        12,
    );
    assert!(hit.injected > 0, "rate schedule must inject");
}

#[test]
fn fp32_campaign_preserves_quality() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f32>(1024, 16, 8, 7);
    let clean = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        InjectionSchedule::Off,
        5,
    );
    let hit = run(
        &dev,
        &data,
        8,
        SchemeKind::FtKMeans,
        InjectionSchedule::PerBlock { probability: 0.5 },
        5,
    );
    assert!(hit.injected > 0);
    let agree = clean
        .labels
        .iter()
        .zip(&hit.labels)
        .filter(|(a, b)| a == b)
        .count() as f64
        / clean.labels.len() as f64;
    assert!(agree > 0.99, "label agreement {agree}");
    assert!((hit.inertia - clean.inertia).abs() / clean.inertia < 1e-2);
}

/// Overlapping blobs for the bound-corruption cases: wide clusters make
/// the first Lloyd step actually move assignments, so a stale label
/// frozen by a corrupted bound is a *wrong* label, not a coincidence.
fn overlapping_blobs(m: usize, dim: usize, k: usize, seed: u64) -> Matrix<f64> {
    let (data, _, _) = make_blobs::<f64>(&BlobSpec {
        samples: m,
        dim,
        centers: k,
        cluster_std: 2.0,
        center_box: 7.0,
        seed,
    });
    data
}

/// Build a Hamerly bound state one Lloyd step past its seeding (so stale
/// labels exist to preserve), then flip exponent bits in the resident
/// bound buffers: upper bounds down (a sample prunes that must rescan),
/// lower bounds up (same effect through the other bound). Deterministic,
/// so every call reproduces the identical corrupted state.
fn corrupted_hamerly_state(
    dev: &DeviceProfile,
    samples: &Matrix<f64>,
    k: usize,
    c: &Counters,
) -> (DeviceData<f64>, Vec<u32>, usize) {
    let (m, dim) = (samples.rows(), samples.cols());
    let cents1 = Matrix::<f64>::from_fn(k, dim, |r, cc| samples.get((r * 61) % m, cc));
    let mut dd = DeviceData::upload(dev, samples, &cents1, c).unwrap();
    dd.ensure_bounds();
    compute_s_half(dev, &dd, c).unwrap();
    hamerly_assign(dev, &dd, false, &NoFault, c).unwrap();

    // One Lloyd step moves the centroids; run the driver's bookkeeping so
    // the bounds stay sound against the moved positions.
    let (labels1, _) = assign_reference(samples, &cents1);
    let (cents2, _) = update_reference(samples, &labels1, &cents1);
    let old = GlobalBuffer::from_matrix(&cents1);
    dd.refresh_centroids(dev, &cents2, c).unwrap();
    let b = dd.bounds.as_ref().unwrap();
    let max_drift = centroid_drift(dev, &old, &dd.centroids, k, dim, &b.drift, c).unwrap();
    compute_s_half(dev, &dd, c).unwrap();
    apply_drift(dev, &dd, max_drift, c).unwrap();

    // Ground truth for the moved centroids (naive never touches bounds).
    let want = naive_assign(dev, &dd, &NoFault, c).unwrap().labels;

    // The barrage: dangerous-direction exponent flips in both buffers.
    let b = dd.bounds.as_ref().unwrap();
    let mut corrupted = 0;
    for i in (0..m).step_by(3) {
        if i % 2 == 0 {
            let v = b.upper.load(i);
            let flipped = v.flip_bit(62);
            if flipped < v {
                b.upper.store(i, flipped);
                corrupted += 1;
            }
        } else {
            let v = b.lower.load(i);
            let flipped = v.flip_bit(62);
            if flipped > v {
                b.lower.store(i, flipped);
                corrupted += 1;
            }
        }
    }
    (dd, want, corrupted)
}

#[test]
fn bound_buffer_bitflips_become_detections_not_sdc() {
    let dev = DeviceProfile::a100();
    let samples = overlapping_blobs(256, 8, 4, 11);
    let c = Counters::new();

    // Negative control: on the corrupted state a pruned pass silently
    // keeps stale labels — the flips would be SDCs if nothing checked.
    let (dd, want, corrupted) = corrupted_hamerly_state(&dev, &samples, 4, &c);
    assert!(corrupted >= 10, "barrage expected, corrupted {corrupted}");
    let unprotected = hamerly_assign(&dev, &dd, false, &NoFault, &c).unwrap();
    let wrong = unprotected
        .labels
        .iter()
        .zip(&want)
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        wrong > 0,
        "corrupted bounds must mislabel at least one sample unprotected"
    );

    // The driver's recipe on a fresh copy of the same corrupted state:
    // full-population revalidation detects, a forced un-pruned pass
    // rebuilds, and the labels come out exactly right.
    let (dd, want, _) = corrupted_hamerly_state(&dev, &samples, 4, &c);
    let violations = revalidate(&dev, &dd, 1, 0, &c).unwrap();
    assert!(
        violations as usize >= corrupted,
        "every dangerous flip must trip revalidation: {violations} < {corrupted}"
    );
    let repaired = hamerly_assign(&dev, &dd, true, &NoFault, &c).unwrap();
    assert_eq!(
        repaired.labels, want,
        "forced full pass restores the labels"
    );
    assert_eq!(
        revalidate(&dev, &dd, 1, 0, &c).unwrap(),
        0,
        "rebuilt state revalidates clean"
    );
}

#[test]
fn bound_repair_is_byte_identical_serial_vs_pool() {
    // The detect-and-repair path must not depend on the execution policy:
    // same corrupted state, same labels and bound bits out, whether blocks
    // run serially or on a worker pool.
    let dev = DeviceProfile::a100();
    let samples = overlapping_blobs(256, 8, 4, 11);
    let outcome = |exec: &Executor| {
        with_executor(exec, || {
            let c = Counters::new();
            let (dd, _, _) = corrupted_hamerly_state(&dev, &samples, 4, &c);
            let violations = revalidate(&dev, &dd, 1, 0, &c).unwrap();
            let repaired = hamerly_assign(&dev, &dd, true, &NoFault, &c).unwrap();
            let b = dd.bounds.as_ref().unwrap();
            let bound_bits: Vec<u64> = b
                .upper
                .to_vec()
                .iter()
                .chain(b.lower.to_vec().iter())
                .map(|v| v.to_bits())
                .collect();
            (violations, repaired.labels, bound_bits)
        })
    };
    let serial = outcome(&Executor::serial());
    let pool = outcome(&Executor::with_workers(4));
    assert_eq!(serial, pool);
}

#[test]
fn dmr_protects_update_phase_under_targeted_storm() {
    let dev = DeviceProfile::a100();
    let data = blobs::<f64>(512, 8, 4, 8);
    let clean = run(
        &dev,
        &data,
        4,
        SchemeKind::FtKMeans,
        InjectionSchedule::Off,
        21,
    );
    let hit = run(
        &dev,
        &data,
        4,
        SchemeKind::FtKMeans,
        InjectionSchedule::PerBlock { probability: 1.0 },
        21,
    );
    assert_eq!(hit.labels, clean.labels);
    assert!(
        hit.dmr.mismatches > 0,
        "a probability-1 storm must hit the update phase at least once"
    );
    assert_eq!(
        hit.dmr.unresolved, 0,
        "SEU faults always resolve by majority"
    );
}

#[test]
fn quantized_table_bitflips_become_detections_not_sdc() {
    // The serving-path analogue of the bound-buffer campaign above: flip a
    // bit in each piece of resident quantized state (packed codes, int8
    // scales, cached norms), then serve a batch through the guarded
    // quantized predict. The digest guard must detect the corruption,
    // rebuild the table from the fp centroids, and serve labels identical
    // to the exact host reference — corrupted resident state is a
    // detection, never silent data corruption.
    use ft_kmeans::kmeans::quant::QuantKind;
    use ft_kmeans::kmeans::PredictPolicy;

    let data = blobs::<f32>(600, 12, 5, 77);
    let queries = blobs::<f32>(200, 12, 5, 78);
    let mut model = Session::a100()
        .kmeans(KMeansConfig {
            k: 5,
            max_iter: 4,
            tol: 0.0,
            seed: 77,
            ..Default::default()
        })
        .fit_model(&data)
        .expect("fit");
    let (want, _) = assign_reference(&queries, &model.centroids);

    for (kind, policy) in [
        (QuantKind::Fp16, PredictPolicy::Fp16),
        (QuantKind::Int8, PredictPolicy::Int8),
    ] {
        model.set_predict_policy(policy);
        let detected_before = model.predict_stats().detected;
        // One flip per state target, each followed by a guarded predict.
        let table = model.quantized_table(kind);
        table.corrupt_code_bit(7, 3);
        let served = model.predict(&blobs::<f32>(200, 12, 5, 79)).unwrap();
        assert_eq!(
            served,
            assign_reference(&blobs::<f32>(200, 12, 5, 79), &model.centroids).0,
            "{kind:?} code flip must not corrupt served labels"
        );
        let table = model.quantized_table(kind);
        let prev = table.scales.load(2);
        table.scales.store(2, prev.flip_bit(21));
        let served = model.predict(&queries).unwrap();
        assert_eq!(served, want, "{kind:?} scale flip must not corrupt labels");
        let table = model.quantized_table(kind);
        let prev = table.norms.load(1);
        table.norms.store(1, prev.flip_bit(30));
        let served = model.predict(&blobs::<f32>(200, 12, 5, 80)).unwrap();
        assert_eq!(
            served,
            assign_reference(&blobs::<f32>(200, 12, 5, 80), &model.centroids).0,
            "{kind:?} norm flip must not corrupt served labels"
        );
        assert_eq!(
            model.predict_stats().detected - detected_before,
            3,
            "{kind:?}: every flip must be caught by the digest guard"
        );
        // After the final repair the resident table verifies clean again.
        assert!(model.quantized_table(kind).verify());
    }
}
