//! The trace determinism contract, asserted end-to-end through the facade:
//!
//! * under a serial executor the recorded event stream of a fit is
//!   **byte-stable** run-to-run (records carry modeled time and
//!   deterministic indices, never wall-clock), and
//! * under the worker pool the per-phase span/launch/counter-delta totals
//!   are **identical** to the serial ones (event *ordering* across
//!   concurrently-emitting callers may differ; the aggregates may not) —
//!   for both a fused-variant fit and a micro-batched serve storm.

use ft_kmeans::gpu::exec::Executor;
use ft_kmeans::gpu::Matrix;
use ft_kmeans::kmeans::config::Variant;
use ft_kmeans::trace::profile::PhaseCounts;
use ft_kmeans::{KMeansConfig, ModelRegistry, RecordingSink, Server, ServerConfig, Session};
use std::collections::BTreeMap;
use std::sync::Arc;

fn blobs(m: usize, dim: usize, k: usize) -> Matrix<f64> {
    Matrix::from_fn(m, dim, |r, c| {
        ((r % k) * 11) as f64 + ((r * 7 + c * 3) % 5) as f64 * 0.05 + c as f64 * 0.01
    })
}

/// One traced fit of `variant` on `exec`, returning the recorded sink.
fn traced_variant_fit(exec: Executor, variant: Variant) -> Arc<RecordingSink> {
    let sink = Arc::new(RecordingSink::default());
    let session = Session::a100()
        .with_executor(exec)
        .with_trace_sink(Arc::clone(&sink) as _);
    let data = blobs(192, 6, 3);
    let model = session
        .kmeans(KMeansConfig::new(3).with_seed(5).with_variant(variant))
        .fit_model(&data)
        .expect("fit");
    assert!(model.iterations > 1, "need a multi-iteration fit to trace");
    sink
}

/// One traced fused-variant fit on `exec`, returning the recorded sink.
fn traced_fit(exec: Executor) -> Arc<RecordingSink> {
    traced_variant_fit(exec, Variant::FusedV2)
}

#[test]
fn serial_fit_event_stream_is_byte_stable() {
    let a = traced_fit(Executor::serial()).to_log_text();
    let b = traced_fit(Executor::serial()).to_log_text();
    assert!(!a.is_empty());
    assert_eq!(a, b, "two serial runs must produce identical event bytes");
    // Serial runs emit from one thread: every record is on track 0.
    assert!(
        a.lines().all(|l| l.starts_with("[t0] ")),
        "serial stream must stay on track 0"
    );
}

#[test]
fn pool_fit_phase_counts_match_serial() {
    let serial = traced_fit(Executor::serial());
    let pooled = traced_fit(Executor::with_workers(4));
    let sc: BTreeMap<&str, PhaseCounts> = serial.phase_profile().counts();
    let pc: BTreeMap<&str, PhaseCounts> = pooled.phase_profile().counts();
    assert!(
        sc.contains_key(ft_kmeans::trace::phases::ASSIGNMENT),
        "fit must produce assignment spans: {:?}",
        sc.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        sc, pc,
        "per-phase span/launch/field totals must not depend on the executor"
    );
}

#[test]
fn fit_phase_profile_matches_committed_variant_ordering() {
    // The committed fit-throughput baselines (baselines/fit_throughput.csv)
    // order naive slowest because it materializes the m×k distance matrix
    // that the fused variant never writes. At toy scale the modeled *time*
    // gap is swamped by per-launch overhead (bench_check's trace gate
    // asserts the time ordering at bench scale in release), but the
    // *traffic* attribution that causes it is scale-independent: the phase
    // profiler must charge the naive assignment phase strictly more memory
    // traffic than the fused one.
    let naive = traced_variant_fit(Executor::serial(), Variant::Naive).phase_profile();
    let fused = traced_fit(Executor::serial()).phase_profile();
    let assignment = ft_kmeans::trace::phases::ASSIGNMENT;
    let traffic = |p: &ft_kmeans::trace::profile::PhaseProfile| {
        p.field_total(assignment, "bytes_loaded") + p.field_total(assignment, "bytes_stored")
    };
    assert!(
        naive.modeled_s(assignment) > 0.0 && fused.modeled_s(assignment) > 0.0,
        "both assignment phases must cost modeled time"
    );
    assert!(
        traffic(&naive) > traffic(&fused),
        "naive assignment traffic ({} B) must exceed fused ({} B): the \
         distance-matrix materialization is what the committed ordering prices",
        traffic(&naive),
        traffic(&fused),
    );
    let table = fused.to_table();
    assert!(table.contains("assignment"), "table lists phases:\n{table}");
    assert!(table.contains("update"), "table lists phases:\n{table}");
}

/// One micro-batched serve storm on `exec`: N queued requests whose rows
/// total exactly `max_batch_rows`, so exactly one group closes (by row
/// budget, not by timer) and the event stream is schedule-independent.
fn traced_storm(exec: Executor) -> Arc<RecordingSink> {
    let session = Session::a100().with_executor(exec);
    let data = blobs(120, 4, 3);
    let registry = ModelRegistry::new();
    registry.register(
        "svc",
        session
            .kmeans(KMeansConfig::new(3).with_seed(1))
            .fit_model(&data)
            .expect("fit")
            .with_predict_policy(ft_kmeans::kmeans::PredictPolicy::Int8),
    );
    // Install the recording sink globally only after the (untraced) fit:
    // the dispatcher thread has no thread-local sink, so the serve path
    // exercises the global slot.
    let sink = Arc::new(RecordingSink::default());
    ft_kmeans::trace::install_global(Arc::clone(&sink) as _);
    let server = Server::new(
        session,
        registry,
        ServerConfig {
            max_batch_rows: 64,
            max_delay_us: 5_000_000, // row budget closes the group, not time
            validate_batched: false,
        },
    );
    std::thread::scope(|s| {
        for _t in 0..4usize {
            let server = &server;
            s.spawn(move || {
                // 4 × 16 rows == max_batch_rows: the last arrival closes it.
                server.predict("svc", &blobs(16, 4, 3)).expect("predict");
            });
        }
    });
    drop(server);
    ft_kmeans::trace::uninstall_global();
    sink
}

#[test]
fn serve_storm_phase_counts_match_serial() {
    let serial = traced_storm(Executor::serial());
    let pooled = traced_storm(Executor::with_workers(4));
    let sc = serial.phase_profile().counts();
    let pc = pooled.phase_profile().counts();
    let predict = ft_kmeans::trace::phases::PREDICT;
    assert!(
        sc.get(predict).is_some_and(|c| c.spans >= 1),
        "storm must produce predict spans: {:?}",
        sc.keys().collect::<Vec<_>>()
    );
    assert_eq!(
        sc, pc,
        "serve-path phase totals must not depend on the executor"
    );
}

#[test]
fn serve_storm_renders_parseable_prometheus_text() {
    let session = Session::a100();
    let data = blobs(120, 4, 3);
    let registry = ModelRegistry::new();
    registry.register(
        "svc",
        session
            .kmeans(KMeansConfig::new(3).with_seed(1))
            .fit_model(&data)
            .expect("fit"),
    );
    let server = Server::new(session, registry, ServerConfig::default());
    for _ in 0..3 {
        server.predict("svc", &blobs(16, 4, 3)).expect("predict");
    }
    let text = server.metrics_text();
    // Minimal Prometheus text-format structure: every non-comment line is
    // `name{labels} value` or `name value`, and each family has HELP/TYPE.
    let mut families = 0;
    for line in text.lines() {
        if line.starts_with("# HELP ") {
            families += 1;
            continue;
        }
        if line.starts_with("# TYPE ") {
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("line has a value");
        assert!(!name_part.is_empty());
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
    }
    assert!(families >= 5, "expected several metric families:\n{text}");
    assert!(text.contains(r#"ftk_serve_requests_total{model="svc"} 3"#));
    assert!(text.contains(r#"ftk_serve_rows_total{model="svc"} 48"#));
    assert!(
        text.contains(r#"ftk_serve_predict_latency_us_bucket{model="svc",le="+Inf"} 3"#),
        "latency histogram buckets must count every request:\n{text}"
    );
}
