//! Streaming mini-batch K-means through the facade: quality vs the
//! full-batch fit, cross-batch accounting, and policy determinism.

use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::fault::InjectionSchedule;
use ft_kmeans::gpu::exec::Executor;
use ft_kmeans::gpu::Matrix;
use ft_kmeans::kmeans::{metrics, FtConfig, InitMethod};
use ft_kmeans::{DeviceProfile, KMeansConfig, Session};

fn blob_data(samples: usize, seed: u64) -> (Matrix<f64>, Vec<u32>) {
    let (data, truth, _) = make_blobs::<f64>(&BlobSpec {
        samples,
        dim: 8,
        centers: 5,
        cluster_std: 0.25,
        center_box: 7.0,
        seed,
    });
    (data, truth)
}

/// Deterministic shuffle: stride permutation, coprime with the row count.
fn shuffle_rows(data: &Matrix<f64>, stride: usize) -> Matrix<f64> {
    let m = data.rows();
    Matrix::from_fn(m, data.cols(), |r, c| data.get((r * stride) % m, c))
}

fn batches_of(data: &Matrix<f64>, size: usize) -> Vec<Matrix<f64>> {
    (0..data.rows())
        .collect::<Vec<_>>()
        .chunks(size)
        .map(|rows| Matrix::from_fn(rows.len(), data.cols(), |r, c| data.get(rows[r], c)))
        .collect()
}

#[test]
fn partial_fit_over_shuffled_batches_matches_full_batch_fit() {
    let (data, _) = blob_data(1000, 21);
    let session = Session::new(DeviceProfile::a100());
    // Seed choice matters: k-means++ is D²-weighted sampling, and a handful
    // of seeds double-seed the closest blob pair on a 200-sample batch and
    // settle in a different (worse) local optimum than the full-batch fit.
    // Everything is deterministic, so this seed is stable forever.
    let km = session.kmeans(
        KMeansConfig::new(5)
            .with_seed(7)
            .with_init(InitMethod::KMeansPlusPlus),
    );
    let full = km.fit_model(&data).expect("full-batch fit");

    // stream the same data, shuffled, in batches of 200, two epochs
    let shuffled = shuffle_rows(&data, 333); // gcd(333, 1000) = 1
    let mut model = None;
    for _ in 0..2 {
        for b in batches_of(&shuffled, 200) {
            model = Some(km.partial_fit(model, &b).expect("batch"));
        }
    }
    let model = model.unwrap();
    let stream_labels = model.predict(&data).expect("predict");
    let ari = metrics::adjusted_rand_index(&stream_labels, &full.labels);
    assert!(
        ari >= 0.95,
        "streaming vs full-batch ARI {ari:.3} (want ≥ 0.95)"
    );
}

#[test]
fn abft_and_injection_accounting_accumulates_monotonically() {
    let (data, _) = blob_data(768, 33);
    let session = Session::new(DeviceProfile::a100());
    let km = session.kmeans(KMeansConfig::new(5).with_seed(2).with_ft(FtConfig {
        scheme: ft_kmeans::abft::SchemeKind::FtKMeans,
        dmr_update: true,
        injection: InjectionSchedule::PerBlock { probability: 0.6 },
        injection_seed: 17,
        ..Default::default()
    }));
    let mut model = None;
    let mut prev_injected = 0u64;
    let mut prev_handled = 0u64;
    let mut prev_bytes = 0u64;
    for b in batches_of(&data, 256) {
        let m = km.partial_fit(model, &b).expect("batch");
        assert!(m.injected >= prev_injected, "injected count is cumulative");
        assert!(m.ft_stats.handled() >= prev_handled, "handled cumulative");
        assert!(m.counters.total_bytes() > prev_bytes, "traffic grows");
        assert_eq!(m.injection_records.len() as u64, m.injected);
        prev_injected = m.injected;
        prev_handled = m.ft_stats.handled();
        prev_bytes = m.counters.total_bytes();
        model = Some(m);
    }
    assert!(prev_injected > 0, "the storm must inject across the stream");
    let model = model.unwrap();
    assert_eq!(model.batches_seen(), 3);
    assert_eq!(
        model.ft_stats.injection_launches,
        2 * model.batches_seen() as u64,
        "one assignment + one update injection launch per batch"
    );
}

#[test]
fn streaming_centroids_are_byte_identical_across_executors() {
    let (data, _) = blob_data(640, 44);
    let run = |exec: Executor| {
        let session = Session::new(DeviceProfile::a100()).with_executor(exec);
        let km = session.kmeans(KMeansConfig::new(5).with_seed(9));
        let mut model = None;
        for b in batches_of(&data, 160) {
            model = Some(km.partial_fit(model, &b).expect("batch"));
        }
        let model = model.unwrap();
        let bits: Vec<u64> = model
            .centroids
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        (bits, model.labels.clone())
    };
    let (serial_bits, serial_labels) = run(Executor::serial());
    let (pool_bits, pool_labels) = run(Executor::with_workers(4));
    assert_eq!(serial_bits, pool_bits, "byte-identical centroids");
    assert_eq!(serial_labels, pool_labels);
}
