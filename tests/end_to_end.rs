//! End-to-end integration: every kernel variant, both precisions, the
//! dataset catalog, against the CPU reference.

use ft_kmeans::data::{anisotropic, imbalanced, uniform_cube, DatasetSpec, SCENARIOS};
use ft_kmeans::gpu::{Matrix, Scalar};
use ft_kmeans::kmeans::reference::{assign_reference, lloyd_reference};
use ft_kmeans::kmeans::{metrics, InitMethod, KMeans, KMeansConfig, Variant};
use ft_kmeans::{DeviceProfile, Session};

fn fit_labels<T: Scalar>(
    session: &Session,
    data: &Matrix<T>,
    k: usize,
    variant: Variant,
    seed: u64,
) -> Vec<u32> {
    let km = session.kmeans(KMeansConfig {
        k,
        max_iter: 12,
        tol: 0.0,
        seed,
        variant,
        ..Default::default()
    });
    km.fit_model(data).expect("fit").labels.clone()
}

#[test]
fn all_variants_agree_on_every_scenario_f64() {
    // FP64 leaves no room for formula-rounding divergence between the
    // direct Σ(x−y)² distance (naive) and the norm identity (GEMM paths):
    // full Lloyd trajectories must coincide. One session serves every
    // scenario/variant combination.
    let session = Session::new(DeviceProfile::a100());
    for spec in SCENARIOS.iter().filter(|s| s.samples <= 3000) {
        let (data, _, _) = spec.build::<f64>();
        let reference = fit_labels(&session, &data, spec.clusters, Variant::Tensor(None), 3);
        for variant in [
            Variant::Naive,
            Variant::GemmV1,
            Variant::FusedV2,
            Variant::BroadcastV3,
        ] {
            let labels = fit_labels(&session, &data, spec.clusters, variant, 3);
            let agree = labels
                .iter()
                .zip(&reference)
                .filter(|(a, b)| a == b)
                .count() as f64
                / labels.len() as f64;
            assert!(
                agree > 0.999,
                "{}: {} disagrees with tensor variant ({:.4})",
                spec.name,
                variant.label(),
                agree
            );
        }
    }
}

#[test]
fn variants_agree_single_step_f32() {
    // FP32: near-tie assignments may flip between distance formulas; a
    // single assignment step must still agree on ≥99% of samples.
    let dev = DeviceProfile::a100();
    let spec = DatasetSpec {
        name: "f32-step",
        samples: 2000,
        dim: 16,
        clusters: 24,
        seed: 13,
    };
    let (data, _, _) = spec.build::<f32>();
    let one = |variant| {
        let km = KMeans::new(
            dev.clone(),
            KMeansConfig {
                k: 24,
                max_iter: 1,
                tol: 0.0,
                seed: 3,
                variant,
                ..Default::default()
            },
        );
        km.fit(&data).expect("fit").labels
    };
    let reference = one(Variant::Tensor(None));
    for variant in [
        Variant::Naive,
        Variant::GemmV1,
        Variant::FusedV2,
        Variant::BroadcastV3,
    ] {
        let labels = one(variant);
        let agree = labels
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a == b)
            .count() as f64
            / labels.len() as f64;
        assert!(
            agree > 0.99,
            "{}: single-step agreement {:.4}",
            variant.label(),
            agree
        );
    }
}

#[test]
fn tensor_variant_tracks_cpu_lloyd_f64() {
    let dev = DeviceProfile::a100();
    let spec = DatasetSpec {
        name: "ref",
        samples: 600,
        dim: 10,
        clusters: 6,
        seed: 8,
    };
    let (data, _, _) = spec.build::<f64>();
    // Same init as the estimator (RandomSamples, seed 11).
    let km = KMeans::new(
        dev,
        KMeansConfig {
            k: 6,
            max_iter: 10,
            tol: 0.0,
            seed: 11,
            variant: Variant::Tensor(None),
            ..Default::default()
        },
    );
    let fit = km.fit(&data).expect("fit");
    // Reconstruct the reference trajectory with identical init.
    // Init extraction is internal; validate by the fixed-point property:
    let (ref_labels, _) = assign_reference(&data, &fit.centroids);
    assert_eq!(
        fit.labels, ref_labels,
        "final labels must be optimal for final centroids"
    );
}

#[test]
fn lloyd_reference_and_gpu_converge_to_same_inertia_class() {
    let dev = DeviceProfile::a100();
    let spec = DatasetSpec {
        name: "conv",
        samples: 500,
        dim: 8,
        clusters: 5,
        seed: 21,
    };
    let (data, _, _) = spec.build::<f64>();
    let km = KMeans::new(
        dev,
        KMeansConfig {
            k: 5,
            max_iter: 40,
            tol: 1e-9,
            seed: 4,
            variant: Variant::Tensor(None),
            ..Default::default()
        },
    );
    let fit = km.fit(&data).expect("fit");
    // CPU Lloyd from the same data (independent random-ish init via
    // centroids of the GPU fit — checks fixed-point property).
    let (c2, l2, _) = lloyd_reference(&data, &fit.centroids, 10);
    let gpu_inertia = metrics::inertia(&data, &fit.centroids, &fit.labels);
    let cpu_inertia = metrics::inertia(&data, &c2, &l2);
    assert!(
        cpu_inertia <= gpu_inertia * 1.0001,
        "continuing from the GPU fixed point must not improve much: {cpu_inertia} vs {gpu_inertia}"
    );
    assert!((cpu_inertia - gpu_inertia).abs() / gpu_inertia < 0.01);
}

#[test]
fn clustering_quality_on_separated_blobs() {
    let dev = DeviceProfile::a100();
    let spec = DatasetSpec {
        name: "quality",
        samples: 1200,
        dim: 6,
        clusters: 8,
        seed: 33,
    };
    let (data, truth, _) = spec.build::<f32>();
    let mut cfg = KMeansConfig::new(8)
        .with_seed(2)
        .with_init(InitMethod::KMeansPlusPlus);
    cfg.max_iter = 60;
    let fit = KMeans::new(dev, cfg).fit(&data).expect("fit");
    let ari = metrics::adjusted_rand_index(&fit.labels, &truth);
    // The catalog blobs overlap slightly (std 0.5 in a ±6 box); high but
    // not perfect agreement is the correct expectation.
    assert!(
        ari > 0.75,
        "k-means++ on blobs should largely recover truth, ARI {ari:.3}"
    );
}

#[test]
fn hard_datasets_do_not_crash_and_produce_valid_labels() {
    let dev = DeviceProfile::t4();
    let noise = uniform_cube::<f32>(700, 5, 3.0, 9);
    let (aniso, _) = anisotropic::<f32>(800, 6, 4, 5.0, 10);
    let (imbal, _) = imbalanced::<f32>(900, 4, 5, 11);
    for (name, data, k) in [
        ("noise", noise, 7),
        ("aniso", aniso, 4),
        ("imbalanced", imbal, 5),
    ] {
        let fit = KMeans::new(dev.clone(), KMeansConfig::new(k).with_seed(1))
            .fit(&data)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(fit.labels.len(), data.rows());
        assert!(
            fit.labels.iter().all(|&l| (l as usize) < k),
            "{name}: label out of range"
        );
        assert!(fit.inertia.is_finite());
    }
}

#[test]
fn t4_and_a100_produce_identical_results() {
    // Device profiles change performance, never semantics.
    let spec = DatasetSpec {
        name: "xdev",
        samples: 400,
        dim: 8,
        clusters: 4,
        seed: 77,
    };
    let (data, _, _) = spec.build::<f64>();
    let cfg = KMeansConfig::new(4).with_seed(5);
    let a = KMeans::new(DeviceProfile::a100(), cfg.clone())
        .fit(&data)
        .unwrap();
    let t = KMeans::new(DeviceProfile::t4(), cfg).fit(&data).unwrap();
    assert_eq!(a.labels, t.labels);
    assert!((a.inertia - t.inertia).abs() < 1e-9);
}

#[test]
fn norms_are_shared_across_variants() {
    // A fused counter sanity check: the tensor variant must touch far less
    // DRAM per iteration than the naive variant on the same problem.
    let dev = DeviceProfile::a100();
    let spec = DatasetSpec {
        name: "traffic",
        samples: 2048,
        dim: 32,
        clusters: 32,
        seed: 6,
    };
    let (data, _, _) = spec.build::<f32>();
    let run = |variant| {
        let km = KMeans::new(
            dev.clone(),
            KMeansConfig {
                k: 32,
                max_iter: 2,
                tol: 0.0,
                seed: 9,
                variant,
                ..Default::default()
            },
        );
        km.fit(&data).unwrap().counters
    };
    let naive = run(Variant::Naive);
    let tensor = run(Variant::Tensor(None));
    assert!(
        tensor.bytes_loaded * 2 < naive.bytes_loaded,
        "tensor {} vs naive {}",
        tensor.bytes_loaded,
        naive.bytes_loaded
    );
}
