//! Clustering-as-a-service: two tenants with different predict policies
//! served concurrently through one micro-batching [`Server`].
//!
//! A latency-tolerant "analytics" tenant serves exact fp32 predictions
//! while a throughput-hungry "edge" tenant serves from the int8 resident
//! table; 16 concurrent clients fire small requests at both, and a
//! maintenance thread refits the edge tenant mid-storm (the hot swap is
//! invisible to in-flight requests). The server coalesces concurrent
//! requests into shared kernel launches — the per-client latency table and
//! the launch count show both sides of the micro-batching trade.
//!
//! ```text
//! cargo run --release --example serving_mixed_traffic
//! ```

use ft_kmeans::gpu::Matrix;
use ft_kmeans::kmeans::{KMeansConfig, PredictPolicy};
use ft_kmeans::{ModelRegistry, Server, ServerConfig, Session};
use std::time::Instant;

const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 24;
const ROWS: usize = 8;
const DIM: usize = 24;

fn blobs(m: usize, k: usize, salt: usize) -> Matrix<f64> {
    Matrix::from_fn(m, DIM, |r, c| {
        ((r % k) * 9) as f64
            + (((r * 131 + c * 17 + salt * 7919) % 1000) as f64 / 1000.0 - 0.5) * 0.8
            + c as f64 * 0.02
    })
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let session = Session::a100();
    let registry = ModelRegistry::new();

    // Tenant 1: exact fp32 serving for the latency-tolerant consumer.
    registry.register(
        "analytics",
        session
            .kmeans(KMeansConfig::new(6).with_seed(1))
            .fit_model(&blobs(3072, 6, 0))
            .expect("fit analytics"),
    );
    // Tenant 2: int8 resident serving (labels still bit-exact — the
    // epilogue falls back to exact rows whenever quantization could flip
    // an argmin).
    registry.register(
        "edge",
        session
            .kmeans(KMeansConfig::new(4).with_seed(2))
            .fit_model(&blobs(3072, 4, 1))
            .expect("fit edge")
            .with_predict_policy(PredictPolicy::Int8),
    );

    let server = Server::new(
        session,
        registry,
        ServerConfig {
            max_batch_rows: 512,
            max_delay_us: 300,
            validate_batched: false,
        },
    );

    println!(
        "multi-tenant serving: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests of {ROWS} rows"
    );
    println!("tenants: analytics (exact fp32), edge (int8 resident)");
    println!();

    // Concurrent client storm + one maintenance refit of the edge tenant.
    let latencies: Vec<(String, Vec<f64>)> = std::thread::scope(|s| {
        let server = &server;
        let maintenance = s.spawn(move || {
            server.refit("edge", &blobs(3072, 4, 99)).expect("refit");
        });
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                s.spawn(move || {
                    let tenant = if c % 2 == 0 { "analytics" } else { "edge" };
                    let k = if c % 2 == 0 { 6 } else { 4 };
                    let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                    for i in 0..REQUESTS_PER_CLIENT {
                        let q = blobs(ROWS, k, c * 1000 + i + 2);
                        let t = Instant::now();
                        let resp = server.predict(tenant, &q).expect("serve");
                        lat.push(t.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(resp.labels.len(), ROWS);
                        assert!(resp.labels.iter().all(|&l| (l as usize) < k));
                    }
                    (tenant.to_string(), lat)
                })
            })
            .collect();
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect();
        maintenance.join().expect("maintenance");
        out
    });

    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>10}",
        "tenant", "requests", "p50 us", "p99 us", "rows/s"
    );
    for tenant in ["analytics", "edge"] {
        let mut lat: Vec<f64> = latencies
            .iter()
            .filter(|(t, _)| t == tenant)
            .flat_map(|(_, l)| l.iter().copied())
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let total_s: f64 = lat.iter().sum::<f64>() / 1e6;
        println!(
            "{:<10} {:>9} {:>10.1} {:>10.1} {:>10.0}",
            tenant,
            lat.len(),
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
            (lat.len() * ROWS) as f64 / total_s
        );
    }

    let stats = server.stats();
    println!();
    println!("predict requests    : {}", stats.predict_requests);
    println!("dispatch groups     : {}", stats.dispatch_groups);
    println!("coalesced requests  : {}", stats.coalesced_requests);
    println!("refits admitted     : {}", stats.refits);

    // The swapped-in edge model serves exactly like a direct call on it.
    let swapped = server.registry().get("edge").expect("still registered");
    assert_eq!(
        swapped.predict_policy(),
        PredictPolicy::Int8,
        "policy survives refit"
    );
    let probe = blobs(64, 4, 123456);
    assert_eq!(
        server.predict("edge", &probe).expect("serve").labels,
        swapped.predict(&probe).expect("direct"),
        "served labels are bit-identical to the unbatched path"
    );
    assert_eq!(
        stats.predict_requests as usize,
        CLIENTS * REQUESTS_PER_CLIENT
    );
    assert!(
        stats.dispatch_groups < stats.predict_requests,
        "concurrent requests must coalesce: {stats:?}"
    );
}
