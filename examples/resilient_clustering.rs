//! Fault-resilience demonstration: the same clustering job under a heavy
//! transient-fault barrage, with and without the FT machinery.
//!
//! Shows what the paper's §V-C campaigns measure: unprotected runs silently
//! diverge; protected runs detect, locate and repair every impactful fault
//! and land on the clean result.
//!
//! ```text
//! cargo run --release --example resilient_clustering
//! ```

use ft_kmeans::abft::SchemeKind;
use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::fault::InjectionSchedule;
use ft_kmeans::kmeans::{FtConfig, KMeansConfig, Variant};
use ft_kmeans::{DeviceProfile, Session};

fn main() {
    let (data, _, _) = make_blobs::<f64>(&BlobSpec {
        samples: 4096,
        dim: 24,
        centers: 10,
        cluster_std: 0.35,
        center_box: 8.0,
        seed: 99,
    });
    // One session serves all three fits.
    let session = Session::new(DeviceProfile::a100());
    let base = KMeansConfig::new(10)
        .with_variant(Variant::tensor_default())
        .with_seed(5);

    // Ground truth: no faults, no FT.
    let clean = session
        .kmeans(base.clone())
        .fit_model(&data)
        .expect("clean");

    let storm = InjectionSchedule::PerBlock { probability: 0.4 };

    // Unprotected under the fault storm.
    let unprotected_cfg = KMeansConfig {
        ft: FtConfig {
            scheme: SchemeKind::None,
            dmr_update: false,
            injection: storm,
            injection_seed: 1234,
            ..Default::default()
        },
        ..base.clone()
    };
    let unprotected = session
        .kmeans(unprotected_cfg)
        .fit_model(&data)
        .expect("unprot");

    // Protected under the same storm.
    let protected_cfg = KMeansConfig {
        ft: FtConfig {
            scheme: SchemeKind::FtKMeans,
            dmr_update: true,
            injection: storm,
            injection_seed: 1234,
            ..Default::default()
        },
        ..base
    };
    let protected = session
        .kmeans(protected_cfg)
        .fit_model(&data)
        .expect("prot");

    let agree = |a: &[u32], b: &[u32]| {
        a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
    };

    println!("resilient clustering under transient faults (A100, FP64)");
    println!("--------------------------------------------------------");
    println!("clean run          : inertia {:.3}", clean.inertia);
    println!();
    println!("UNPROTECTED + faults ({} injected):", unprotected.injected);
    println!(
        "  label agreement with clean : {:.2}%",
        agree(&clean.labels, &unprotected.labels) * 100.0
    );
    println!(
        "  inertia                    : {:.3} (clean {:.3})",
        unprotected.inertia, clean.inertia
    );
    println!();
    println!("FT K-MEANS + faults ({} injected):", protected.injected);
    println!(
        "  corrected in place         : {}",
        protected.ft_stats.corrected
    );
    println!(
        "  checksum re-baselines      : {}",
        protected.ft_stats.rebaselined
    );
    println!(
        "  interval recomputations    : {}",
        protected.ft_stats.recomputed
    );
    println!(
        "  DMR mismatches (update)    : {}",
        protected.dmr.mismatches
    );
    println!(
        "  label agreement with clean : {:.2}%",
        agree(&clean.labels, &protected.labels) * 100.0
    );
    println!("  inertia                    : {:.3}", protected.inertia);

    assert!(protected.injected > 0, "the storm must inject faults");
    assert_eq!(
        protected.labels, clean.labels,
        "FP64 FT run must reproduce the clean clustering exactly"
    );
    let handled = protected.ft_stats.handled() + protected.dmr.mismatches;
    assert!(handled > 0, "the FT layer must visibly handle faults");
}
