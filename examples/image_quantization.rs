//! Vector quantization of image patches — the classic K-means systems
//! workload the paper's introduction cites ([2] Gersho & Gray).
//!
//! Builds a codebook of 4x4 patches from a synthetic image, reconstructs
//! the image from the codebook, and reports compression statistics.
//!
//! ```text
//! cargo run --release --example image_quantization
//! ```

use ft_kmeans::data::{image_patches, SyntheticImage};
use ft_kmeans::gpu::Matrix;
use ft_kmeans::kmeans::{FtConfig, KMeansConfig, Variant};
use ft_kmeans::{DeviceProfile, Session};

const PATCH: usize = 4;
const CODEBOOK: usize = 32;

fn main() {
    // 1. Render a synthetic 256x192 grayscale image and cut it into
    //    non-overlapping 4x4 patches (16-dimensional samples).
    let img = SyntheticImage::generate(256, 192, 6, 2024);
    let patches: Matrix<f32> = image_patches(&img, PATCH);
    println!(
        "image {}x{} -> {} patches of dim {}",
        img.width,
        img.height,
        patches.rows(),
        patches.cols()
    );

    // 2. Learn the codebook with the FT tensor kernel.
    let session = Session::new(DeviceProfile::a100());
    let km = session.kmeans(
        KMeansConfig::new(CODEBOOK)
            .with_variant(Variant::tensor_default())
            .with_ft(FtConfig::protected())
            .with_seed(3),
    );
    let fit = km.fit_model(&patches).expect("codebook fit");

    // 3. Reconstruct: replace every patch by its codeword and measure MSE.
    let mut mse = 0.0f64;
    for (i, &code) in fit.labels.iter().enumerate() {
        for d in 0..patches.cols() {
            let err = patches.get(i, d) as f64 - fit.centroids.get(code as usize, d) as f64;
            mse += err * err;
        }
    }
    mse /= (patches.rows() * patches.cols()) as f64;
    let psnr = 10.0 * (1.0f64 / mse.max(1e-12)).log10();

    let raw_bits = patches.rows() * PATCH * PATCH * 8;
    let vq_bits =
        patches.rows() * (CODEBOOK as f64).log2().ceil() as usize + CODEBOOK * PATCH * PATCH * 8;

    println!("codebook entries  : {CODEBOOK}");
    println!("iterations        : {}", fit.iterations);
    println!("reconstruction MSE: {mse:.5}");
    println!("PSNR              : {psnr:.1} dB");
    println!(
        "compression       : {} -> {} bits ({:.1}x)",
        raw_bits,
        vq_bits,
        raw_bits as f64 / vq_bits as f64
    );

    // 4. Quantize a second image against the SAME fitted codebook: the
    //    model owns its uploaded centroids, so this is a predict call, not
    //    a re-fit (and no centroid re-upload happens).
    let img2 = SyntheticImage::generate(128, 96, 4, 4048);
    let patches2: Matrix<f32> = image_patches(&img2, PATCH);
    let codes2 = fit.predict(&patches2).expect("quantize second image");
    let distortion2 = fit.score(&patches2).expect("score second image")
        / (patches2.rows() * patches2.cols()) as f64;
    println!(
        "second image      : {} patches quantized, distortion {distortion2:.5}",
        codes2.len()
    );

    assert!(
        psnr > 15.0,
        "codebook should reconstruct the image reasonably"
    );
    assert!(fit.iterations > 1);
    assert!(distortion2.is_finite() && distortion2 >= 0.0);
}
