//! Quickstart: cluster Gaussian blobs with the tensor-core kernel on the
//! simulated A100, with fault tolerance enabled.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::kmeans::{metrics, FtConfig, InitMethod, KMeans, KMeansConfig, Variant};
use ft_kmeans::DeviceProfile;

fn main() {
    // 1. A synthetic workload: 8192 samples, 16 features, 12 true clusters.
    let spec = BlobSpec {
        samples: 8192,
        dim: 16,
        centers: 12,
        cluster_std: 0.4,
        center_box: 6.0,
        seed: 42,
    };
    let (data, true_labels, _) = make_blobs::<f32>(&spec);

    // 2. Configure the estimator: tensor-core kernel, warp-level ABFT on
    //    the distance GEMM, DMR on the centroid update.
    let mut config = KMeansConfig::new(12)
        .with_variant(Variant::tensor_default())
        .with_ft(FtConfig::protected())
        .with_seed(7);
    config.init = InitMethod::KMeansPlusPlus;
    let km = KMeans::new(DeviceProfile::a100(), config);

    // 3. Fit.
    let result = km.fit(&data).expect("fit");

    println!("FT K-Means quickstart");
    println!("  samples           : {}", data.rows());
    println!("  iterations        : {}", result.iterations);
    println!("  converged         : {}", result.converged);
    println!("  inertia           : {:.2}", result.inertia);
    println!(
        "  ARI vs truth      : {:.3}",
        metrics::adjusted_rand_index(&result.labels, &true_labels)
    );
    println!("  FT clean sweeps   : {}", result.ft_stats.clean_sweeps);
    println!(
        "  DRAM traffic      : {:.1} MB",
        result.counters.total_bytes() as f64 / 1e6
    );
    println!("  tensor MMA issued : {}", result.counters.mma_ops);
    println!("  checksum MMA      : {}", result.counters.ft_mma_ops);

    assert!(result.converged, "quickstart should converge");
}
