//! Quickstart: cluster Gaussian blobs with the tensor-core kernel on the
//! simulated A100, with fault tolerance enabled.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::kmeans::{metrics, FtConfig, InitMethod, KMeansConfig, Variant};
use ft_kmeans::{DeviceProfile, Session};

fn main() {
    // 1. A synthetic workload: 8192 samples, 16 features, 12 true clusters.
    let spec = BlobSpec {
        samples: 8192,
        dim: 16,
        centers: 12,
        cluster_std: 0.4,
        center_box: 6.0,
        seed: 42,
    };
    let (data, true_labels, _) = make_blobs::<f32>(&spec);

    // 2. A session holds the long-lived context (device, executor handle,
    //    selector cache); the estimator configuration is all builders:
    //    tensor-core kernel, warp-level ABFT on the distance GEMM, DMR on
    //    the centroid update, k-means++ seeding.
    let session = Session::new(DeviceProfile::a100());
    let km = session.kmeans(
        KMeansConfig::new(12)
            .with_variant(Variant::tensor_default())
            .with_ft(FtConfig::protected())
            .with_seed(7)
            .with_init(InitMethod::KMeansPlusPlus),
    );

    // 3. Fit. The returned model owns the uploaded centroids, so predict
    //    and score calls reuse them without re-uploading.
    let result = km.fit_model(&data).expect("fit");

    println!("FT K-Means quickstart");
    println!("  samples           : {}", data.rows());
    println!("  iterations        : {}", result.iterations);
    println!("  converged         : {}", result.converged);
    println!("  inertia           : {:.2}", result.inertia);
    println!(
        "  ARI vs truth      : {:.3}",
        metrics::adjusted_rand_index(&result.labels, &true_labels)
    );
    println!("  FT clean sweeps   : {}", result.ft_stats.clean_sweeps);
    println!(
        "  DRAM traffic      : {:.1} MB",
        result.counters.total_bytes() as f64 / 1e6
    );
    println!("  tensor MMA issued : {}", result.counters.mma_ops);
    println!("  checksum MMA      : {}", result.counters.ft_mma_ops);

    // 4. The fitted model classifies unseen samples directly.
    let (probe, _, _) = make_blobs::<f32>(&BlobSpec { seed: 43, ..spec });
    let probe_labels = result.predict(&probe).expect("predict");
    println!(
        "  probe batch       : {} samples classified",
        probe_labels.len()
    );

    assert!(result.converged, "quickstart should converge");
}
