//! Streaming mini-batch K-means: cluster a data stream that is never
//! resident in memory as a whole, with per-batch ABFT accounting.
//!
//! Batches of blob samples arrive one at a time; `partial_fit` assigns each
//! batch with the tensor-core kernel (warp-level ABFT enabled) and folds
//! the batch means into the running centroids with the mini-batch
//! learning-rate rule. Statistics (injected/handled faults, hardware
//! counters) accumulate across the stream.
//!
//! ```text
//! cargo run --release --example streaming_blobs
//! ```

use ft_kmeans::data::{make_blobs, BlobSpec};
use ft_kmeans::kmeans::{metrics, FtConfig, InitMethod, KMeansConfig};
use ft_kmeans::{DeviceProfile, Session};

const K: usize = 8;
const BATCHES: usize = 12;
const BATCH_SIZE: usize = 1024;

fn main() {
    let session = Session::new(DeviceProfile::a100());
    let km = session.kmeans(
        KMeansConfig::new(K)
            .with_ft(FtConfig::protected())
            .with_seed(11)
            .with_init(InitMethod::KMeansPlusPlus),
    );

    println!("streaming mini-batch K-means (A100, FP32, warp-level ABFT)");
    println!("----------------------------------------------------------");
    println!("batch | batch inertia | clean sweeps | DRAM MB (cum)");

    // One 8-blob ground truth; the stream consumes it in batches (blob
    // samples are striped across components, so every batch sees every
    // cluster) and the tail is held out for evaluation.
    const HOLDOUT: usize = 4096;
    let (all, truth, _) = make_blobs::<f32>(&BlobSpec {
        samples: BATCHES * BATCH_SIZE + HOLDOUT,
        dim: 16,
        centers: K,
        cluster_std: 0.4,
        center_box: 6.0,
        seed: 1000,
    });
    let slice_rows = |lo: usize, hi: usize| {
        ft_kmeans::gpu::Matrix::<f32>::from_fn(hi - lo, all.cols(), |r, c| all.get(lo + r, c))
    };

    let mut model = None;
    for b in 0..BATCHES {
        let batch = slice_rows(b * BATCH_SIZE, (b + 1) * BATCH_SIZE);
        let m = km.partial_fit(model, &batch).expect("partial_fit");
        println!(
            "{b:>5} | {:>13.2} | {:>12} | {:>13.1}",
            m.inertia,
            m.ft_stats.clean_sweeps,
            m.counters.total_bytes() as f64 / 1e6
        );
        model = Some(m);
    }
    let model = model.expect("at least one batch");

    // Held-out evaluation: the fitted model predicts samples it never saw.
    let holdout = slice_rows(BATCHES * BATCH_SIZE, BATCHES * BATCH_SIZE + HOLDOUT);
    let labels = model.predict(&holdout).expect("predict");
    let ari = metrics::adjusted_rand_index(&labels, &truth[BATCHES * BATCH_SIZE..]);

    println!();
    println!("batches consumed    : {}", model.batches_seen());
    println!(
        "samples seen        : {}",
        model.center_weights().iter().sum::<u64>()
    );
    println!("held-out ARI        : {ari:.3}");

    assert_eq!(model.batches_seen(), BATCHES);
    assert!(
        ari > 0.9,
        "streaming fit should recover the blob structure, ARI {ari:.3}"
    );
}
