//! Walk the code-generation pipeline end to end: enumerate the parameter
//! space, probe feasibility, tune over the paper's 64-shape grid, inspect
//! the winners, and emit the generated CUDA-like source for the best
//! kernel (§III-B, Fig. 3).
//!
//! ```text
//! cargo run --release --example autotune_explorer
//! ```

use ft_kmeans::codegen::feasibility::feasible_set;
use ft_kmeans::codegen::template::{emit_kernel, emit_selector};
use ft_kmeans::codegen::tuner::{tune, ShapeGrid};
use ft_kmeans::codegen::{enumerate_params, KernelParams, KernelSelector, ParamRegistry};
use ft_kmeans::{DeviceProfile, Precision};

fn main() {
    let device = DeviceProfile::a100();
    println!("code-generation pipeline on {}", device.name);
    println!("============================================");

    for precision in Precision::all() {
        let space = enumerate_params(precision);
        let feasible = feasible_set(&device, precision, &space);
        let registry = ParamRegistry::new(precision);
        let table = tune(&device, precision, &registry, &ShapeGrid::paper());
        let winners = table.distinct_winners();

        println!();
        println!("[{precision}]");
        println!("  candidates defined   : {}", space.len());
        println!("  feasible on device   : {}", feasible.len());
        println!("  shapes benchmarked   : {}", table.entries.len());
        println!("  distinct winners     : {}", winners.len());
        println!("  mean speedup vs cuML : {:.2}x", table.mean_speedup());
        println!("  max speedup vs cuML  : {:.2}x", table.max_speedup());
        for id in &winners {
            let p = registry.get(*id).expect("winner id");
            let uses = table.entries.iter().filter(|e| e.param_id == *id).count();
            println!(
                "    id {id:>3}: tb{} warp{} — wins {uses}/64 shapes",
                p.threadblock, p.warp
            );
        }

        // Emit generated source for the overall best kernel + the selector.
        let best = table
            .entries
            .iter()
            .max_by(|a, b| a.speedup().partial_cmp(&b.speedup()).unwrap())
            .expect("entries");
        let best_params = *registry.get(best.param_id).expect("id");
        println!(
            "  biggest win          : {:.2}x at N={}, K={}",
            best.speedup(),
            best.dim,
            best.clusters
        );
        println!("  --- generated kernel (FT instrumented) ---");
        for line in emit_kernel(best.param_id, precision, &best_params, true)
            .lines()
            .take(8)
        {
            println!("  | {line}");
        }
        let named: Vec<(usize, KernelParams)> = winners
            .iter()
            .map(|&id| (id, *registry.get(id).unwrap()))
            .collect();
        println!("  selector covers {} kernels", named.len());
        let _ = emit_selector(precision, &named);

        // The queryable artifact. (In estimator code this is what
        // `Session::selector` builds lazily and persists via
        // `FTK_SELECTOR_CACHE` / `Session::with_selector_cache`.)
        let selector = KernelSelector::build(&device, precision);
        let choice = selector.select(8, 64);
        println!(
            "  selector(M=131072, K=8, N=64) -> tb{} warp{}",
            choice.threadblock, choice.warp
        );

        // Roofline diagnosis of the chosen kernel at that shape.
        use ft_kmeans::codegen::feasibility::stages_for;
        use ft_kmeans::gpu::timing::{estimate, GemmShape, KernelClass, TimingInput};
        let timing = estimate(&TimingInput::plain(
            &device,
            precision,
            KernelClass::Tensor(choice.tile_config(stages_for(&device))),
            GemmShape::new(131_072, 8, 64),
        ));
        println!("  breakdown            : {timing}");
        println!("  binding leg          : {}", timing.binding_leg());
    }
}
